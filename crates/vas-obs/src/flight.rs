//! Crash flight recorder: a bounded ring of the most recent spans and
//! events, dumped to a post-mortem file when a fatal error path or a
//! contained worker panic fires.
//!
//! The journal ([`crate::Journal`]) keeps *everything* in memory until
//! flushed; the flight recorder keeps only the last `capacity` lines but
//! survives to tell the story when a run dies — the observability analogue
//! of PR 7's crash-safe sampling. Lines are pre-rendered JSONL at note
//! time, so a dump is a plain sequential write with no serialization work
//! on the fatal path.

use serde::Value;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::journal::EventValue;
use crate::trace::SpanRecord;

/// Default bound on the number of lines the ring retains.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

/// Bounded ring buffer of recent observability lines with a post-mortem
/// dump path. Shared behind an `Arc` by [`crate::Recorder::with_flight`].
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    epoch: Instant,
    ring: Mutex<VecDeque<String>>,
    dump_path: Mutex<Option<PathBuf>>,
    dumps: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A flight recorder with the default ring capacity and no dump path.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A flight recorder retaining at most `capacity` lines.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            epoch: Instant::now(),
            ring: Mutex::new(VecDeque::new()),
            dump_path: Mutex::new(None),
            dumps: AtomicU64::new(0),
        }
    }

    /// Sets the file the ring is written to on [`FlightRecorder::dump`].
    pub fn set_dump_path(&self, path: impl Into<PathBuf>) {
        *self.dump_path.lock().unwrap_or_else(|e| e.into_inner()) = Some(path.into());
    }

    /// Number of lines currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been noted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many post-mortem dumps have been written.
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// A copy of the retained lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    fn push_line(&self, line: String) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(line);
    }

    /// Notes a finished span into the ring.
    pub fn note_span(&self, span: &SpanRecord) {
        let mut obj: Vec<(String, Value)> = vec![
            ("kind".to_string(), Value::String("span".to_string())),
            ("name".to_string(), Value::String(span.name.clone())),
            ("span_id".to_string(), Value::Number(span.id as f64)),
            ("thread".to_string(), Value::Number(span.thread as f64)),
            ("start_us".to_string(), Value::Number(span.start_us as f64)),
            ("dur_us".to_string(), Value::Number(span.dur_us as f64)),
        ];
        if let Some(parent) = span.parent {
            obj.insert(3, ("parent_id".to_string(), Value::Number(parent as f64)));
        }
        for (k, v) in &span.attrs {
            obj.push((k.clone(), Value::String(v.clone())));
        }
        if let Ok(line) = serde_json::to_string(&Value::Object(obj)) {
            self.push_line(line);
        }
    }

    /// Notes a journal-style event into the ring.
    pub fn note_event(&self, event: &str, fields: &[(&str, EventValue)]) {
        let t_us = self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut obj: Vec<(String, Value)> = vec![
            ("kind".to_string(), Value::String("event".to_string())),
            ("t_us".to_string(), Value::Number(t_us as f64)),
            ("event".to_string(), Value::String(event.to_string())),
        ];
        for (k, v) in fields {
            let value = match v {
                EventValue::U64(n) => Value::Number(*n as f64),
                EventValue::F64(f) => {
                    if !f.is_finite() {
                        continue;
                    }
                    Value::Number(*f)
                }
                EventValue::Str(s) => Value::String(s.clone()),
                EventValue::Bool(b) => Value::Bool(*b),
            };
            obj.push(((*k).to_string(), value));
        }
        if let Ok(line) = serde_json::to_string(&Value::Object(obj)) {
            self.push_line(line);
        }
    }

    /// Writes the ring to the configured dump path as JSONL, preceded by a
    /// header line carrying `reason` and a dump sequence number. Returns
    /// the path written, or `None` when no dump path is configured.
    /// Old contents are preserved on re-dump by suffixing `.N` from the
    /// second dump onward.
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        let base = self
            .dump_path
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()?;
        let seq = self.dumps.fetch_add(1, Ordering::Relaxed);
        let path = if seq == 0 {
            base
        } else {
            let mut name = base.as_os_str().to_os_string();
            name.push(format!(".{seq}"));
            PathBuf::from(name)
        };
        let header = Value::Object(vec![
            ("kind".to_string(), Value::String("flight_dump".to_string())),
            ("reason".to_string(), Value::String(reason.to_string())),
            ("seq".to_string(), Value::Number(seq as f64)),
            (
                "t_us".to_string(),
                Value::Number(self.epoch.elapsed().as_micros().min(u64::MAX as u128) as f64),
            ),
        ]);
        let mut out = serde_json::to_string(&header).unwrap_or_default();
        out.push('\n');
        for line in self.lines() {
            out.push_str(&line);
            out.push('\n');
        }
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, out) {
            Ok(()) => Some(path),
            Err(_) => None,
        }
    }

    /// Like [`FlightRecorder::dump`] but to an explicit path, ignoring the
    /// configured one.
    pub fn dump_to(&self, path: &Path, reason: &str) -> std::io::Result<()> {
        self.set_dump_path_if_unset(path);
        let header = Value::Object(vec![
            ("kind".to_string(), Value::String("flight_dump".to_string())),
            ("reason".to_string(), Value::String(reason.to_string())),
        ]);
        let mut out = serde_json::to_string(&header).unwrap_or_default();
        out.push('\n');
        for line in self.lines() {
            out.push_str(&line);
            out.push('\n');
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, out)
    }

    fn set_dump_path_if_unset(&self, path: &Path) {
        let mut dump_path = self.dump_path.lock().unwrap_or_else(|e| e.into_inner());
        if dump_path.is_none() {
            *dump_path = Some(path.to_path_buf());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, name: &str) -> SpanRecord {
        SpanRecord {
            id,
            parent: if id > 1 { Some(1) } else { None },
            name: name.to_string(),
            thread: 1,
            start_us: 10 * id,
            dur_us: 5,
            attrs: vec![],
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let flight = FlightRecorder::with_capacity(3);
        for i in 1..=5 {
            flight.note_span(&span(i, &format!("s{i}")));
        }
        let lines = flight.lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"s3\""));
        assert!(lines[2].contains("\"s5\""));
    }

    #[test]
    fn events_and_spans_interleave_as_jsonl() {
        let flight = FlightRecorder::new();
        flight.note_span(&span(1, "build"));
        flight.note_event(
            "retry",
            &[
                ("attempt", EventValue::U64(2)),
                ("ok", EventValue::Bool(true)),
            ],
        );
        flight.note_event("bad_float", &[("x", EventValue::F64(f64::NAN))]);
        let lines = flight.lines();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            serde_json::from_str::<Value>(line).expect("every ring line is valid JSON");
        }
        assert!(lines[1].contains("\"attempt\":2"));
        assert!(
            !lines[2].contains("\"x\""),
            "non-finite floats are dropped from the line, not serialized"
        );
    }

    #[test]
    fn dump_writes_header_plus_ring_and_sequences_re_dumps() {
        let dir = std::env::temp_dir().join(format!(
            "vas-flight-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let flight = FlightRecorder::new();
        assert_eq!(flight.dump("early"), None, "no path configured yet");
        flight.set_dump_path(dir.join("postmortem.jsonl"));
        flight.note_span(&span(1, "build"));
        let first = flight.dump("retries_exhausted").expect("dump path set");
        let text = std::fs::read_to_string(&first).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"flight_dump\""));
        assert!(header.contains("retries_exhausted"));
        assert_eq!(lines.count(), 1);
        let second = flight.dump("again").unwrap();
        assert_ne!(first, second, "re-dump must not clobber the first file");
        assert_eq!(flight.dumps(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
