//! # vas-obs
//!
//! The unified observability layer of the VAS reproduction: one
//! [`MetricsRegistry`] of typed monotonic counters, phase-scoped wall-clock
//! timers feeding fixed-bucket latency [`Histogram`]s (p50/p95/p99), an
//! append-only JSONL event [`Journal`], and two exporters over a
//! [`MetricsSnapshot`] — structured JSON ([`export::snapshot_to_json`]) and
//! Prometheus text exposition ([`export::snapshot_to_prometheus`]). On top
//! of the flat metrics sits the causal layer: hierarchical spans
//! ([`trace::Tracer`], exported as Chrome-trace/Perfetto JSON) and a crash
//! [`FlightRecorder`] that dumps the last N spans/events to a post-mortem
//! file when a fatal path fires.
//!
//! Every layer of the stack records through a cheap, cloneable [`Recorder`]
//! handle: `vas-core`'s Interchange loop (fill vs candidate-eval vs
//! accept-churn vs speculation-replay phases, accepts/rejects/kernel lanes,
//! checkpoint write/resume events), `vas-stream` (chunk decode and prefetch
//! latency, retries absorbed, CRC failures, corruption skips), `vas-par`
//! (worker busy time, read-ahead channel occupancy, contained panics) and
//! `vas-storage` (per-K catalog build times, persist commit events).
//!
//! ## The off-the-data-path determinism rule
//!
//! The workspace's load-bearing contract is **bit-identical determinism**
//! (`tests/determinism.rs` pins every backend and thread count to the same
//! sample, bit for bit). Instrumentation must therefore never sit *on* the
//! data path:
//!
//! * **No measured value may influence sampled state.** Counters, timers and
//!   journal entries are write-only from the algorithm's point of view —
//!   nothing in `vas-core` ever branches on a metric. The instrumented build
//!   is pinned bit-identical to the uninstrumented build by
//!   `tests/determinism.rs`.
//! * **Disabled means no-op.** Every component records through a
//!   [`Recorder`]; the default [`Recorder::detached`] handle has timing off
//!   and no journal, so the hot path performs *zero* `Instant::now` calls
//!   and no I/O. Counter increments remain (they back the long-standing
//!   public getters such as `VasSampler::kernel_lanes()`) but are relaxed
//!   atomic adds batched at chunk granularity.
//! * **Overhead is measured, not assumed.** The `obs_overhead` phase of the
//!   `fig10_inner_loop` harness times a fully instrumented build (journal +
//!   timing) against the detached build and enforces a ≤3% throughput
//!   ceiling plus a `bit_identical` flag in `results/BENCH_obs.json`,
//!   non-zero exit on violation.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use vas_obs::{export, Counter, Journal, MetricsRegistry, Phase, Recorder};
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let journal = Arc::new(Journal::in_memory());
//! let rec = Recorder::new(Arc::clone(&registry))
//!     .with_journal(Arc::clone(&journal))
//!     .with_timing(true);
//!
//! // Count, time, journal.
//! rec.inc(Counter::StreamChunksDecoded, 1);
//! {
//!     let _guard = rec.phase(Phase::ChunkDecode);
//!     // ... decode a chunk ...
//! }
//! rec.event("checkpoint_write", &[("pass", 0u64.into()), ("chunks", 8u64.into())]);
//!
//! // Snapshot and export.
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter(Counter::StreamChunksDecoded), 1);
//! let json = export::snapshot_to_json(&snap);
//! let prom = export::snapshot_to_prometheus(&snap);
//! assert!(json.contains("stream_chunks_decoded"));
//! assert!(prom.contains("vas_stream_chunks_decoded_total 1"));
//! assert_eq!(journal.lines().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod histogram;
pub mod journal;
pub mod recorder;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use flight::FlightRecorder;
pub use histogram::{Histogram, HISTOGRAM_BUCKETS};
pub use journal::{EventValue, Journal};
pub use recorder::{PhaseGuard, Recorder};
pub use registry::{Counter, MetricsRegistry, Phase, ValueSeries};
pub use snapshot::MetricsSnapshot;
pub use trace::{parse_chrome_trace, SpanContext, SpanGuard, SpanRecord, Tracer};
