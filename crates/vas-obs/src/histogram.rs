//! Fixed-bucket log-scale histograms for latency (and other non-negative
//! integer) distributions.
//!
//! The bucket layout is fixed at compile time so histograms can live in
//! plain arrays, merge by bucket index, and round-trip through the
//! exporters without any per-instance configuration: values `0..=3` get
//! exact buckets, and every power-of-two octave above that is split into 4
//! sub-buckets. The relative quantization error is therefore bounded at 25%
//! across the full `u64` range — plenty for p50/p95/p99 over nanosecond
//! timings — with [`HISTOGRAM_BUCKETS`] (= 252) buckets total.

/// Number of buckets in every [`Histogram`]: 4 exact buckets for `0..=3`
/// plus 4 sub-buckets for each of the 62 octaves `[2^k, 2^{k+1})`,
/// `k = 2..=63`.
pub const HISTOGRAM_BUCKETS: usize = 252;

/// Returns the bucket index recording `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < 4 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize; // >= 2
    let sub = ((value >> (msb - 2)) & 3) as usize;
    4 + (msb - 2) * 4 + sub
}

/// Returns the smallest value that lands in bucket `index`.
///
/// Panics if `index >= HISTOGRAM_BUCKETS`.
pub fn bucket_lower_bound(index: usize) -> u64 {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    if index < 4 {
        return index as u64;
    }
    let octave = (index - 4) / 4 + 2;
    let sub = ((index - 4) % 4) as u64;
    (1u64 << octave) + (sub << (octave - 2))
}

/// Returns the largest value that lands in bucket `index` (inclusive).
///
/// Panics if `index >= HISTOGRAM_BUCKETS`.
pub fn bucket_upper_bound(index: usize) -> u64 {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    if index + 1 == HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower_bound(index + 1) - 1
    }
}

/// A plain (non-atomic) fixed-bucket histogram.
///
/// This is the value type used by snapshots, deltas, the exporters and the
/// `bench::timing` helpers; the live registry records into its atomic twin
/// (`registry::AtomicHistogram`) and converts on snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q` in `[0, 1]`, reported as the upper bound of the
    /// bucket containing that rank (so the estimate errs on the
    /// conservative, too-slow side, by at most 25% relative). Returns 0 for
    /// an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Rebuilds a histogram from raw parts (exporter/parse path). Bucket
    /// indices out of range are rejected.
    pub fn from_parts(buckets: &[(usize, u64)], count: u64, sum: u64) -> Result<Self, String> {
        let mut h = Self::new();
        let mut total = 0u64;
        for &(i, c) in buckets {
            if i >= HISTOGRAM_BUCKETS {
                return Err(format!("bucket index {i} out of range"));
            }
            h.counts[i] += c;
            total += c;
        }
        if total != count {
            return Err(format!(
                "bucket counts sum to {total} but count field says {count}"
            ));
        }
        h.count = count;
        h.sum = sum;
        Ok(h)
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The observations recorded since `earlier` was captured.
    ///
    /// If any bucket (or the total count) has gone *down*, the underlying
    /// histogram was reset between the two snapshots; the delta is then
    /// `self` wholesale — the Prometheus convention for counter resets.
    pub fn delta(&self, earlier: &Histogram) -> Histogram {
        let reset = self.count < earlier.count
            || self
                .counts
                .iter()
                .zip(earlier.counts.iter())
                .any(|(now, before)| now < before);
        if reset {
            return self.clone();
        }
        let mut out = Self::new();
        for (i, (now, before)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            out.counts[i] = now - before;
        }
        out.count = self.count - earlier.count;
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        // Every bucket's lower bound maps back to that bucket, upper bounds
        // are the next lower bound minus one, and the sequence is strictly
        // increasing with no gaps.
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lower_bound(i);
            let hi = bucket_upper_bound(i);
            assert!(lo <= hi, "bucket {i}: lo {lo} > hi {hi}");
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            if i + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(bucket_lower_bound(i + 1), hi + 1, "gap after bucket {i}");
            }
        }
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded_at_25_percent() {
        for &v in &[4u64, 5, 100, 1_000, 123_456, 1 << 40, u64::MAX / 3] {
            let i = bucket_index(v);
            let lo = bucket_lower_bound(i);
            let hi = bucket_upper_bound(i);
            assert!((hi - lo) as f64 <= 0.25 * lo as f64 + 1.0, "bucket for {v}");
        }
    }

    #[test]
    fn percentiles_walk_the_cumulative_distribution() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        // Bucketed estimates err high by at most 25%.
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        assert!((99..=127).contains(&p99), "p99 = {p99}");
        assert!(h.percentile(1.0) >= 100);
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn percentile_edge_cases_empty_single_and_saturated() {
        // Empty: every quantile (including the extremes) reads 0.
        let empty = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.percentile(q), 0);
        }
        assert_eq!(empty.mean(), 0.0);

        // Single sample: every quantile lands in that one sample's bucket.
        let mut single = Histogram::new();
        single.record(7);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(bucket_index(single.percentile(q)), bucket_index(7));
        }
        assert_eq!(single.mean(), 7.0);

        // Top-bucket saturation: u64::MAX observations land in the last
        // bucket, quantiles report its (exact) upper bound, and the sum
        // saturates instead of wrapping.
        let mut top = Histogram::new();
        top.record(u64::MAX);
        top.record(u64::MAX);
        assert_eq!(top.bucket_counts()[HISTOGRAM_BUCKETS - 1], 2);
        assert_eq!(top.percentile(0.5), u64::MAX);
        assert_eq!(top.percentile(1.0), u64::MAX);
        assert_eq!(top.sum(), u64::MAX);
    }

    #[test]
    fn merge_adds_and_delta_subtracts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 10, 100] {
            a.record(v);
        }
        for v in [2u64, 20] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.sum(), 133);
        let d = merged.delta(&a);
        assert_eq!(d, b);
    }

    #[test]
    fn delta_detects_resets() {
        let mut before = Histogram::new();
        before.record(5);
        before.record(5);
        let mut after_reset = Histogram::new();
        after_reset.record(7);
        // `after_reset` has fewer observations than `before`: the histogram
        // was reset in between, so the delta is the new histogram wholesale.
        assert_eq!(after_reset.delta(&before), after_reset);
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 9, 1 << 30] {
            h.record(v);
        }
        let sparse: Vec<(usize, u64)> = h
            .bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        let rebuilt = Histogram::from_parts(&sparse, h.count(), h.sum()).unwrap();
        assert_eq!(rebuilt, h);
        assert!(Histogram::from_parts(&[(HISTOGRAM_BUCKETS, 1)], 1, 0).is_err());
        assert!(Histogram::from_parts(&[(0, 1)], 2, 0).is_err());
    }
}
