//! The append-only JSONL event journal.
//!
//! One line per event, each a flat JSON object with a monotonic `t_us`
//! timestamp (microseconds since the journal was opened) and an `event`
//! kind, e.g.:
//!
//! ```text
//! {"t_us":1523,"event":"checkpoint_write","pass":0,"chunks":8}
//! {"t_us":1897,"event":"retry","context":"read chunk","attempt":1}
//! ```
//!
//! Appends are best-effort (a full disk must never fail a build) and
//! mutex-serialized; the journal is attached to a [`crate::Recorder`]
//! behind an `Arc` and shared by every instrumented layer.

use serde::Value;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// A typed journal field value.
#[derive(Debug, Clone, PartialEq)]
pub enum EventValue {
    /// Unsigned integer field.
    U64(u64),
    /// Float field.
    F64(f64),
    /// String field.
    Str(String),
    /// Boolean field.
    Bool(bool),
}

impl From<u64> for EventValue {
    fn from(v: u64) -> Self {
        EventValue::U64(v)
    }
}

impl From<usize> for EventValue {
    fn from(v: usize) -> Self {
        EventValue::U64(v as u64)
    }
}

impl From<f64> for EventValue {
    fn from(v: f64) -> Self {
        EventValue::F64(v)
    }
}

impl From<&str> for EventValue {
    fn from(v: &str) -> Self {
        EventValue::Str(v.to_string())
    }
}

impl From<bool> for EventValue {
    fn from(v: bool) -> Self {
        EventValue::Bool(v)
    }
}

impl EventValue {
    fn to_value(&self) -> Value {
        match self {
            EventValue::U64(v) => Value::Number(*v as f64),
            EventValue::F64(v) => Value::Number(*v),
            EventValue::Str(s) => Value::String(s.clone()),
            EventValue::Bool(b) => Value::Bool(*b),
        }
    }
}

#[derive(Debug)]
enum Sink {
    Memory(Vec<String>),
    File(BufWriter<File>),
}

/// An append-only JSONL event journal.
#[derive(Debug)]
pub struct Journal {
    start: Instant,
    sink: Mutex<Sink>,
}

impl Journal {
    /// A journal that keeps its lines in memory (tests, the overhead
    /// harness, and short diagnostic runs).
    pub fn in_memory() -> Self {
        Self {
            start: Instant::now(),
            sink: Mutex::new(Sink::Memory(Vec::new())),
        }
    }

    /// A journal appending to a file at `path` (created/truncated).
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            start: Instant::now(),
            sink: Mutex::new(Sink::File(BufWriter::new(file))),
        })
    }

    /// Appends one event line. `kind` becomes the `event` field; `fields`
    /// follow in the given order. Best-effort: I/O errors are swallowed.
    pub fn append(&self, kind: &str, fields: &[(&str, EventValue)]) {
        let t_us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut obj: Vec<(String, Value)> = Vec::with_capacity(fields.len() + 2);
        obj.push(("t_us".to_string(), Value::Number(t_us as f64)));
        obj.push(("event".to_string(), Value::String(kind.to_string())));
        for (k, v) in fields {
            obj.push((k.to_string(), v.to_value()));
        }
        let Ok(line) = serde_json::to_string(&Value::Object(obj)) else {
            return; // non-finite float field; drop the line, never fail a build
        };
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        match &mut *sink {
            Sink::Memory(lines) => lines.push(line),
            Sink::File(w) => {
                let _ = writeln!(w, "{line}");
            }
        }
    }

    /// The lines recorded so far (in-memory journals only; a file-backed
    /// journal returns an empty vec — read the file instead).
    pub fn lines(&self) -> Vec<String> {
        let sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        match &*sink {
            Sink::Memory(lines) => lines.clone(),
            Sink::File(_) => Vec::new(),
        }
    }

    /// True if any recorded line is an event of `kind`.
    pub fn contains_event(&self, kind: &str) -> bool {
        let needle = format!("\"event\":\"{kind}\"");
        self.lines().iter().any(|l| l.contains(&needle))
    }

    /// Flushes a file-backed journal to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        match &mut *sink {
            Sink::Memory(_) => Ok(()),
            Sink::File(w) => w.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_flat_json_objects_in_order() {
        let j = Journal::in_memory();
        j.append(
            "checkpoint_write",
            &[("pass", 0u64.into()), ("chunks", 8u64.into())],
        );
        j.append(
            "retry",
            &[("context", "read chunk".into()), ("attempt", 1u64.into())],
        );
        let lines = j.lines();
        assert_eq!(lines.len(), 2);
        let first: Value = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(
            first.get("event"),
            Some(&Value::String("checkpoint_write".into()))
        );
        assert_eq!(first.get("chunks"), Some(&Value::Number(8.0)));
        assert!(first.get("t_us").is_some());
        assert!(j.contains_event("retry"));
        assert!(!j.contains_event("persist_commit"));
    }

    #[test]
    fn file_sink_appends_jsonl() {
        let dir = std::env::temp_dir().join(format!("vas-obs-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let j = Journal::create(&path).unwrap();
        j.append("persist_commit", &[("samples", 3u64.into())]);
        j.append("retry", &[]);
        j.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: Value = serde_json::from_str(line).unwrap();
            assert!(v.get("event").is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
