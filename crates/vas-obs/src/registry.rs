//! The typed metric namespace and the lock-free [`MetricsRegistry`].
//!
//! Metrics are *typed*: every counter, timed phase and value series is an
//! enum variant, so a metric name typo is a compile error and the registry
//! is a handful of fixed-size atomic arrays — no maps, no locks, no
//! allocation on the record path.

use crate::histogram::{bucket_index, Histogram, HISTOGRAM_BUCKETS};
use crate::snapshot::MetricsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counters, one per variant.
///
/// Prefixes name the owning layer (`Core` = `vas-core` Interchange, `Stream`
/// = `vas-stream`, `Par` = `vas-par`, `Storage` = `vas-storage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Counter {
    /// Candidate tuples accepted (sample replacements) by Interchange.
    CoreAccepts,
    /// Candidate tuples rejected by Interchange.
    CoreRejects,
    /// Kernel-evaluation lanes swept by the batched SoA path.
    CoreKernelLanes,
    /// Speculation worker panics contained by the sequential fallback.
    CoreContainedWorkerPanics,
    /// Checkpoints written by `run_checkpointed`.
    CoreCheckpointWrites,
    /// Builds resumed from a checkpoint.
    CoreCheckpointResumes,
    /// Chunks decoded from `.vaschunk` spills.
    StreamChunksDecoded,
    /// Chunk/header CRC mismatches detected.
    StreamCrcFailures,
    /// Corrupt chunks skipped under `CorruptionPolicy::SkipChunks`.
    StreamCorruptChunksSkipped,
    /// Points lost to skipped corrupt chunks.
    StreamPointsSkipped,
    /// Transient source errors absorbed by `RetryingSource`.
    StreamRetriesAbsorbed,
    /// Retry budgets exhausted (fatal `RetriesExhausted` surfaced).
    StreamRetriesExhausted,
    /// Worker stripes executed by the `vas-par` ordered fan-out.
    ParTasksExecuted,
    /// Worker panics contained by `try_par_map_ordered`.
    ParContainedPanics,
    /// Samples built into a `SampleCatalog`.
    StorageCatalogSamplesBuilt,
    /// Catalogs durably committed (manifest written last).
    StoragePersistCommits,
    /// Candidate tuples accepted across all shard workers of sharded
    /// builds. Lifetime tally (shard workers reset per-build counters when
    /// they finalize, so the per-build `Core` pair cannot carry this).
    CoreShardAccepts,
    /// Candidate tuples rejected across all shard workers of sharded
    /// builds. Lifetime tally, like [`Counter::CoreShardAccepts`].
    CoreShardRejects,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 18] = [
        Counter::CoreAccepts,
        Counter::CoreRejects,
        Counter::CoreKernelLanes,
        Counter::CoreContainedWorkerPanics,
        Counter::CoreCheckpointWrites,
        Counter::CoreCheckpointResumes,
        Counter::StreamChunksDecoded,
        Counter::StreamCrcFailures,
        Counter::StreamCorruptChunksSkipped,
        Counter::StreamPointsSkipped,
        Counter::StreamRetriesAbsorbed,
        Counter::StreamRetriesExhausted,
        Counter::ParTasksExecuted,
        Counter::ParContainedPanics,
        Counter::StorageCatalogSamplesBuilt,
        Counter::StoragePersistCommits,
        Counter::CoreShardAccepts,
        Counter::CoreShardRejects,
    ];

    /// Number of counters.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            Counter::CoreAccepts => "core_accepts",
            Counter::CoreRejects => "core_rejects",
            Counter::CoreKernelLanes => "core_kernel_lanes",
            Counter::CoreContainedWorkerPanics => "core_contained_worker_panics",
            Counter::CoreCheckpointWrites => "core_checkpoint_writes",
            Counter::CoreCheckpointResumes => "core_checkpoint_resumes",
            Counter::StreamChunksDecoded => "stream_chunks_decoded",
            Counter::StreamCrcFailures => "stream_crc_failures",
            Counter::StreamCorruptChunksSkipped => "stream_corrupt_chunks_skipped",
            Counter::StreamPointsSkipped => "stream_points_skipped",
            Counter::StreamRetriesAbsorbed => "stream_retries_absorbed",
            Counter::StreamRetriesExhausted => "stream_retries_exhausted",
            Counter::ParTasksExecuted => "par_tasks_executed",
            Counter::ParContainedPanics => "par_contained_panics",
            Counter::StorageCatalogSamplesBuilt => "storage_catalog_samples_built",
            Counter::StoragePersistCommits => "storage_persist_commits",
            Counter::CoreShardAccepts => "core_shard_accepts",
            Counter::CoreShardRejects => "core_shard_rejects",
        }
    }

    /// Whether [`MetricsRegistry::reset_build_counters`] zeroes this
    /// counter.
    ///
    /// Mirrors `VasSampler::reset()`: per-build tallies (accepts, rejects,
    /// kernel lanes) start over with each build, while sampler-lifetime
    /// health counters — `CoreContainedWorkerPanics` foremost, matching the
    /// long-standing carve-out — and every non-core layer's counters
    /// survive. The shard aggregates (`CoreShardAccepts`/`CoreShardRejects`)
    /// also survive: shard workers share one registry and each worker's
    /// finalize resets the per-build pair, so the sharded path accumulates
    /// into these lifetime counters *after* each worker finishes.
    pub fn resets_with_build(self) -> bool {
        matches!(
            self,
            Counter::CoreAccepts | Counter::CoreRejects | Counter::CoreKernelLanes
        )
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Timed phases. Each phase accumulates total wall-clock nanoseconds, a
/// call count, and a per-call latency [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Phase {
    /// Interchange fill phase (first K points streamed in).
    Fill,
    /// Candidate evaluation (speculative pre-evaluation fan-out or the
    /// sequential delta loop), per chunk batch.
    CandidateEval,
    /// Accept churn: applying a replacement to sample + index + tracker.
    AcceptChurn,
    /// Replaying speculatively pre-evaluated candidates against the live
    /// sample state.
    SpeculationReplay,
    /// Decoding one chunk from a `.vaschunk` spill.
    ChunkDecode,
    /// Consumer-side wait on the prefetch read-ahead channel.
    PrefetchWait,
    /// One worker stripe of a `vas-par` ordered fan-out.
    WorkerTask,
    /// Building one per-K sample of a catalog.
    CatalogBuild,
    /// Durably persisting a catalog (chunks + sidecars + manifest).
    PersistSave,
    /// One shard worker consuming its sub-stream during a sharded build
    /// (observe + fill, up to the shard sample's finalize).
    ShardFill,
    /// The ordered merge pass reducing the shard-sample union to the final
    /// K-sample.
    ShardMerge,
}

impl Phase {
    /// Every phase, in export order.
    pub const ALL: [Phase; 11] = [
        Phase::Fill,
        Phase::CandidateEval,
        Phase::AcceptChurn,
        Phase::SpeculationReplay,
        Phase::ChunkDecode,
        Phase::PrefetchWait,
        Phase::WorkerTask,
        Phase::CatalogBuild,
        Phase::PersistSave,
        Phase::ShardFill,
        Phase::ShardMerge,
    ];

    /// Number of phases.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Fill => "fill",
            Phase::CandidateEval => "candidate_eval",
            Phase::AcceptChurn => "accept_churn",
            Phase::SpeculationReplay => "speculation_replay",
            Phase::ChunkDecode => "chunk_decode",
            Phase::PrefetchWait => "prefetch_wait",
            Phase::WorkerTask => "worker_task",
            Phase::CatalogBuild => "catalog_build",
            Phase::PersistSave => "persist_save",
            Phase::ShardFill => "shard_fill",
            Phase::ShardMerge => "shard_merge",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Non-timing value distributions (dimensionless), each a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ValueSeries {
    /// Read-ahead channel occupancy observed at each consumer `recv`
    /// (0 = the consumer outran the producer, depth = fully buffered).
    ReadAheadOccupancy,
    /// Occupied-cell count of a sampler's `HashGrid` locality index,
    /// observed when its fill phase completes (the density-adaptive
    /// cell-sizing signal).
    GridOccupiedCells,
    /// Maximum points in any single occupied `HashGrid` cell, observed with
    /// [`ValueSeries::GridOccupiedCells`].
    GridMaxCellPoints,
}

impl ValueSeries {
    /// Every value series, in export order.
    pub const ALL: [ValueSeries; 3] = [
        ValueSeries::ReadAheadOccupancy,
        ValueSeries::GridOccupiedCells,
        ValueSeries::GridMaxCellPoints,
    ];

    /// Number of value series.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            ValueSeries::ReadAheadOccupancy => "read_ahead_occupancy",
            ValueSeries::GridOccupiedCells => "grid_occupied_cells",
            ValueSeries::GridMaxCellPoints => "grid_max_cell_points",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// An atomic fixed-bucket histogram (the registry-resident twin of
/// [`Histogram`]).
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty atomic histogram.
    pub const fn new() -> Self {
        Self {
            counts: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation of `value` (relaxed ordering; counters are
    /// statistics, not synchronization).
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Copies the current contents into a plain [`Histogram`].
    pub fn load(&self) -> Histogram {
        let mut sparse = Vec::new();
        let mut total = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c > 0 {
                sparse.push((i, c));
                total += c;
            }
        }
        let sum = self.sum.load(Ordering::Relaxed);
        // Under concurrent recording the count cell can lag the bucket
        // cells (or vice versa); trust the bucket sum so the invariant
        // `Histogram::from_parts` checks always holds.
        Histogram::from_parts(&sparse, total, sum).expect("bucket indices in range")
    }
}

/// The process-wide (or component-private) metric store: one atomic cell
/// per [`Counter`], and per-[`Phase`]/[`ValueSeries`] totals + histograms.
///
/// All operations are lock-free relaxed atomics; the registry is shared
/// across threads behind an `Arc` by [`crate::Recorder`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::COUNT],
    phase_ns: [AtomicU64; Phase::COUNT],
    phase_hist: [AtomicHistogram; Phase::COUNT],
    value_hist: [AtomicHistogram; ValueSeries::COUNT],
}

impl MetricsRegistry {
    /// Creates a registry with every metric at zero.
    pub fn new() -> Self {
        Self {
            counters: [const { AtomicU64::new(0) }; Counter::COUNT],
            phase_ns: [const { AtomicU64::new(0) }; Phase::COUNT],
            phase_hist: [const { AtomicHistogram::new() }; Phase::COUNT],
            value_hist: [const { AtomicHistogram::new() }; ValueSeries::COUNT],
        }
    }

    /// Adds `n` to `counter`.
    #[inline]
    pub fn inc(&self, counter: Counter, n: u64) {
        if n > 0 {
            self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Overwrites `counter` with `value`.
    ///
    /// Restore-only: counters are monotonic; the sole legitimate caller is
    /// checkpoint resume, which re-seeds the registry with the values the
    /// interrupted build had already accumulated.
    pub fn set(&self, counter: Counter, value: u64) {
        self.counters[counter.index()].store(value, Ordering::Relaxed);
    }

    /// Records one timed call of `phase` lasting `ns` nanoseconds.
    pub fn record_phase(&self, phase: Phase, ns: u64) {
        self.phase_ns[phase.index()].fetch_add(ns, Ordering::Relaxed);
        self.phase_hist[phase.index()].record(ns);
    }

    /// Records one observation into `series`.
    pub fn record_value(&self, series: ValueSeries, value: u64) {
        self.value_hist[series.index()].record(value);
    }

    /// Total nanoseconds accumulated by `phase`.
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()].load(Ordering::Relaxed)
    }

    /// Zeroes the per-build counters (see [`Counter::resets_with_build`]);
    /// everything else — `CoreContainedWorkerPanics` foremost — survives.
    /// Called by `VasSampler::reset()` so registry-backed getters keep the
    /// exact semantics the plain-field counters had.
    pub fn reset_build_counters(&self) {
        for c in Counter::ALL {
            if c.resets_with_build() {
                self.counters[c.index()].store(0, Ordering::Relaxed);
            }
        }
    }

    /// Captures an immutable copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = [0u64; Counter::COUNT];
        for c in Counter::ALL {
            counters[c.index()] = self.get(c);
        }
        let mut phase_ns = [0u64; Phase::COUNT];
        let phase_hist: [Histogram; Phase::COUNT] = std::array::from_fn(|i| {
            phase_ns[i] = self.phase_ns[i].load(Ordering::Relaxed);
            self.phase_hist[i].load()
        });
        let value_hist: [Histogram; ValueSeries::COUNT] =
            std::array::from_fn(|i| self.value_hist[i].load());
        MetricsSnapshot::from_parts(counters, phase_ns, phase_hist, value_hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_increment_and_read_back() {
        let r = MetricsRegistry::new();
        r.inc(Counter::CoreAccepts, 3);
        r.inc(Counter::CoreAccepts, 2);
        assert_eq!(r.get(Counter::CoreAccepts), 5);
        assert_eq!(r.get(Counter::CoreRejects), 0);
        r.set(Counter::CoreKernelLanes, 42);
        assert_eq!(r.get(Counter::CoreKernelLanes), 42);
    }

    #[test]
    fn build_reset_mirrors_the_contained_panics_carve_out() {
        let r = MetricsRegistry::new();
        for c in Counter::ALL {
            r.inc(c, 7);
        }
        r.reset_build_counters();
        assert_eq!(r.get(Counter::CoreAccepts), 0);
        assert_eq!(r.get(Counter::CoreRejects), 0);
        assert_eq!(r.get(Counter::CoreKernelLanes), 0);
        // The sampler-lifetime health counter and every non-core layer
        // survive, exactly like the plain-field implementation did.
        assert_eq!(r.get(Counter::CoreContainedWorkerPanics), 7);
        assert_eq!(r.get(Counter::CoreCheckpointWrites), 7);
        assert_eq!(r.get(Counter::StreamRetriesAbsorbed), 7);
        assert_eq!(r.get(Counter::StoragePersistCommits), 7);
    }

    #[test]
    fn phases_accumulate_time_and_latency() {
        let r = MetricsRegistry::new();
        r.record_phase(Phase::ChunkDecode, 1_000);
        r.record_phase(Phase::ChunkDecode, 3_000);
        assert_eq!(r.phase_total_ns(Phase::ChunkDecode), 4_000);
        let snap = r.snapshot();
        assert_eq!(snap.phase_calls(Phase::ChunkDecode), 2);
        assert!(snap.phase_percentile(Phase::ChunkDecode, 0.5) >= 1_000);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Phase::ALL.iter().map(|p| p.name()));
        names.extend(ValueSeries::ALL.iter().map(|s| s.name()));
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn atomic_histogram_loads_to_plain() {
        let h = AtomicHistogram::new();
        h.record(10);
        h.record(20);
        let plain = h.load();
        assert_eq!(plain.count(), 2);
        assert_eq!(plain.sum(), 30);
    }
}
