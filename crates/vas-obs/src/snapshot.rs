//! Point-in-time metric captures and reset-aware delta arithmetic.

use crate::histogram::Histogram;
use crate::registry::{Counter, Phase, ValueSeries};

/// An immutable copy of every metric in a [`crate::MetricsRegistry`],
/// captured by [`crate::MetricsRegistry::snapshot`].
///
/// Snapshots subtract: [`MetricsSnapshot::delta`] yields the activity
/// between two captures, which is what a scrape-based exporter (Prometheus)
/// or a per-build report wants.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    counters: [u64; Counter::COUNT],
    phase_ns: [u64; Phase::COUNT],
    phase_hist: [Histogram; Phase::COUNT],
    value_hist: [Histogram; ValueSeries::COUNT],
}

impl MetricsSnapshot {
    /// Assembles a snapshot from raw parts (registry and exporter-parse
    /// paths).
    pub fn from_parts(
        counters: [u64; Counter::COUNT],
        phase_ns: [u64; Phase::COUNT],
        phase_hist: [Histogram; Phase::COUNT],
        value_hist: [Histogram; ValueSeries::COUNT],
    ) -> Self {
        Self {
            counters,
            phase_ns,
            phase_hist,
            value_hist,
        }
    }

    /// An all-zero snapshot.
    pub fn empty() -> Self {
        Self {
            counters: [0; Counter::COUNT],
            phase_ns: [0; Phase::COUNT],
            phase_hist: std::array::from_fn(|_| Histogram::new()),
            value_hist: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Value of `counter` at capture time.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Total nanoseconds accumulated by `phase` at capture time.
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase as usize]
    }

    /// Number of timed calls of `phase`.
    pub fn phase_calls(&self, phase: Phase) -> u64 {
        self.phase_hist[phase as usize].count()
    }

    /// Per-call latency quantile for `phase` in nanoseconds (bucket upper
    /// bound; see [`Histogram::percentile`]).
    pub fn phase_percentile(&self, phase: Phase, q: f64) -> u64 {
        self.phase_hist[phase as usize].percentile(q)
    }

    /// The latency histogram of `phase`.
    pub fn phase_histogram(&self, phase: Phase) -> &Histogram {
        &self.phase_hist[phase as usize]
    }

    /// The distribution of `series`.
    pub fn value_histogram(&self, series: ValueSeries) -> &Histogram {
        &self.value_hist[series as usize]
    }

    /// The activity between `earlier` and `self` (both captured from the
    /// same registry, `earlier` first).
    ///
    /// Reset-aware, per metric: when a counter now reads *lower* than it
    /// did before, the metric was reset in between (e.g.
    /// `VasSampler::reset()` zeroing the per-build counters) and the delta
    /// is the current value wholesale — the Prometheus counter-reset
    /// convention, mirroring the `contained_worker_panics` carve-out:
    /// counters that survive resets keep plain subtraction.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut counters = [0u64; Counter::COUNT];
        for (i, c) in counters.iter_mut().enumerate() {
            let (now, before) = (self.counters[i], earlier.counters[i]);
            *c = if now < before { now } else { now - before };
        }
        let mut phase_ns = [0u64; Phase::COUNT];
        for (i, n) in phase_ns.iter_mut().enumerate() {
            let (now, before) = (self.phase_ns[i], earlier.phase_ns[i]);
            *n = if now < before { now } else { now - before };
        }
        let phase_hist: [Histogram; Phase::COUNT] =
            std::array::from_fn(|i| self.phase_hist[i].delta(&earlier.phase_hist[i]));
        let value_hist: [Histogram; ValueSeries::COUNT] =
            std::array::from_fn(|i| self.value_hist[i].delta(&earlier.value_hist[i]));
        Self {
            counters,
            phase_ns,
            phase_hist,
            value_hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn delta_subtracts_monotonic_counters() {
        let r = MetricsRegistry::new();
        r.inc(Counter::StreamRetriesAbsorbed, 2);
        let before = r.snapshot();
        r.inc(Counter::StreamRetriesAbsorbed, 3);
        r.record_phase(Phase::ChunkDecode, 500);
        let after = r.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counter(Counter::StreamRetriesAbsorbed), 3);
        assert_eq!(d.phase_calls(Phase::ChunkDecode), 1);
        assert_eq!(d.phase_total_ns(Phase::ChunkDecode), 500);
        // Untouched metrics have a zero delta.
        assert_eq!(d.counter(Counter::CoreAccepts), 0);
        assert_eq!(d.phase_calls(Phase::Fill), 0);
    }

    #[test]
    fn delta_across_a_build_reset_mirrors_the_carve_out() {
        let r = MetricsRegistry::new();
        r.inc(Counter::CoreKernelLanes, 100);
        r.inc(Counter::CoreContainedWorkerPanics, 1);
        let before = r.snapshot();
        // A new build starts: per-build counters reset, the lifetime health
        // counter survives (the `contained_worker_panics` carve-out).
        r.reset_build_counters();
        r.inc(Counter::CoreKernelLanes, 40);
        r.inc(Counter::CoreContainedWorkerPanics, 1);
        let after = r.snapshot();
        let d = after.delta(&before);
        // Reset detected: delta is the post-reset value wholesale.
        assert_eq!(d.counter(Counter::CoreKernelLanes), 40);
        // No reset: plain subtraction.
        assert_eq!(d.counter(Counter::CoreContainedWorkerPanics), 1);
    }

    #[test]
    fn empty_snapshot_is_the_delta_identity() {
        let r = MetricsRegistry::new();
        r.inc(Counter::CoreAccepts, 9);
        r.record_value(ValueSeries::ReadAheadOccupancy, 2);
        let s = r.snapshot();
        assert_eq!(s.delta(&MetricsSnapshot::empty()), s);
    }
}
