//! The [`Recorder`] handle every instrumented component records through.

use crate::flight::FlightRecorder;
use crate::journal::{EventValue, Journal};
use crate::registry::{Counter, MetricsRegistry, Phase, ValueSeries};
use crate::trace::{SpanContext, SpanGuard, Tracer};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// A cheap, cloneable handle bundling a metrics registry, an optional
/// event journal, and a timing switch.
///
/// Components hold a `Recorder` by value. The default is
/// [`Recorder::detached`]: a private registry, timing **off**, no journal —
/// counter-backed getters keep working, while the hot path performs zero
/// `Instant::now` calls and zero I/O (the off-the-data-path rule; see the
/// crate docs). Attaching a shared registry/journal via
/// [`Recorder::new`]/[`Recorder::with_journal`]/[`Recorder::with_timing`]
/// turns on full observability without touching any algorithmic state.
#[derive(Debug, Clone)]
pub struct Recorder {
    registry: Arc<MetricsRegistry>,
    journal: Option<Arc<Journal>>,
    tracer: Option<Arc<Tracer>>,
    flight: Option<Arc<FlightRecorder>>,
    timing: bool,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::detached()
    }
}

impl Recorder {
    /// The disabled/no-op mode: a fresh private registry, timing off, no
    /// journal. Counters still accumulate (they back public getters such as
    /// `VasSampler::kernel_lanes()`), but no wall clock is read and nothing
    /// is written anywhere.
    pub fn detached() -> Self {
        Self {
            registry: Arc::new(MetricsRegistry::new()),
            journal: None,
            tracer: None,
            flight: None,
            timing: false,
        }
    }

    /// A recorder over a shared registry (timing still off; enable it with
    /// [`Recorder::with_timing`]).
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            registry,
            journal: None,
            tracer: None,
            flight: None,
            timing: false,
        }
    }

    /// Attaches an event journal.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Attaches a span tracer; [`Recorder::span`] and friends become live.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attaches a crash flight recorder: finished spans and journal events
    /// are mirrored into its bounded ring, and [`Recorder::fatal`] dumps it.
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Enables or disables phase timing (wall-clock reads).
    pub fn with_timing(mut self, on: bool) -> Self {
        self.timing = on;
        self
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// Whether phase timing is enabled.
    pub fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// Adds `n` to `counter`.
    #[inline]
    pub fn inc(&self, counter: Counter, n: u64) {
        self.registry.inc(counter, n);
    }

    /// Restore-only counter overwrite (checkpoint resume; see
    /// [`MetricsRegistry::set`]).
    pub fn set_restored(&self, counter: Counter, value: u64) {
        self.registry.set(counter, value);
    }

    /// Records one observation into `series`.
    #[inline]
    pub fn record_value(&self, series: ValueSeries, value: u64) {
        self.registry.record_value(series, value);
    }

    /// Starts a phase-scoped timer; the elapsed time is recorded when the
    /// returned guard drops. When timing is disabled this is a true no-op:
    /// no `Instant::now` call is made on either end.
    #[inline]
    pub fn phase(&self, phase: Phase) -> PhaseGuard<'_> {
        PhaseGuard {
            recorder: self,
            phase,
            start: if self.timing {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Records an explicitly measured phase duration (for call sites that
    /// manage their own clock, e.g. worker stripes timed off-thread).
    pub fn record_phase_ns(&self, phase: Phase, ns: u64) {
        self.registry.record_phase(phase, ns);
    }

    /// Appends an event to the journal, if one is attached (otherwise a
    /// no-op — not even the timestamp is read), and mirrors it into the
    /// flight recorder's ring, if one is attached.
    pub fn event(&self, kind: &str, fields: &[(&str, EventValue)]) {
        if let Some(journal) = &self.journal {
            journal.append(kind, fields);
        }
        if let Some(flight) = &self.flight {
            flight.note_event(kind, fields);
        }
    }

    /// Opens a span parented under the current thread's innermost open span
    /// (or the ambient build root). Inert when no tracer is attached: no
    /// clock read, no lock, no allocation.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.tracer {
            Some(tracer) => tracer.span(name).with_flight(self.flight.clone()),
            None => SpanGuard::noop(),
        }
    }

    /// Opens a span under an explicit [`SpanContext`] — the cross-thread
    /// propagation entry point (`vas-par` workers, the speculation front).
    #[inline]
    pub fn span_under(&self, name: &'static str, parent: Option<SpanContext>) -> SpanGuard {
        match &self.tracer {
            Some(tracer) => tracer
                .span_under(name, parent)
                .with_flight(self.flight.clone()),
            None => SpanGuard::noop(),
        }
    }

    /// Opens a **root** span that also becomes the tracer's ambient parent
    /// for its lifetime (see [`Tracer::root_span`]) — used at the top of
    /// `build_from_source` so pipeline threads spawned earlier still parent
    /// under the build.
    #[inline]
    pub fn root_span(&self, name: &'static str) -> SpanGuard {
        match &self.tracer {
            Some(tracer) => tracer.root_span(name).with_flight(self.flight.clone()),
            None => SpanGuard::noop(),
        }
    }

    /// The context a worker spawned *now* should parent under, or `None`
    /// when no tracer is attached / no span is open.
    #[inline]
    pub fn current_ctx(&self) -> Option<SpanContext> {
        self.tracer.as_ref().and_then(|t| t.current_context())
    }

    /// Marks a fatal condition: journals/flight-notes a `fatal` event and
    /// dumps the flight recorder's ring to its post-mortem file. Returns
    /// the dump path when one was written. Callers invoke this on
    /// `VasError` fatal paths and contained worker panics *before*
    /// propagating the error.
    pub fn fatal(&self, reason: &str) -> Option<PathBuf> {
        self.event("fatal", &[("reason", EventValue::Str(reason.to_string()))]);
        self.flight.as_ref().and_then(|f| f.dump(reason))
    }
}

/// RAII guard returned by [`Recorder::phase`]; records the elapsed
/// wall-clock time into the phase's total and latency histogram on drop.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    recorder: &'a Recorder,
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.recorder.registry.record_phase(self.phase, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_recorder_counts_but_never_times() {
        let rec = Recorder::detached();
        rec.inc(Counter::CoreAccepts, 1);
        {
            let _g = rec.phase(Phase::Fill);
        }
        rec.event("checkpoint_write", &[]);
        let snap = rec.registry().snapshot();
        assert_eq!(snap.counter(Counter::CoreAccepts), 1);
        // Timing off: the phase guard recorded nothing.
        assert_eq!(snap.phase_calls(Phase::Fill), 0);
        assert!(rec.journal().is_none());
    }

    #[test]
    fn enabled_recorder_times_and_journals() {
        let registry = Arc::new(MetricsRegistry::new());
        let journal = Arc::new(Journal::in_memory());
        let rec = Recorder::new(Arc::clone(&registry))
            .with_journal(Arc::clone(&journal))
            .with_timing(true);
        {
            let _g = rec.phase(Phase::ChunkDecode);
            std::hint::black_box(0u64);
        }
        rec.event("retry", &[("attempt", 1u64.into())]);
        let snap = registry.snapshot();
        assert_eq!(snap.phase_calls(Phase::ChunkDecode), 1);
        assert!(journal.contains_event("retry"));
    }

    #[test]
    fn detached_recorder_spans_are_inert() {
        let rec = Recorder::detached();
        let guard = rec.span("anything");
        assert!(!guard.is_live());
        assert!(rec.current_ctx().is_none());
        assert!(rec.fatal("nope").is_none());
    }

    #[test]
    fn traced_recorder_records_spans_and_mirrors_to_flight() {
        let tracer = Arc::new(Tracer::new());
        let flight = Arc::new(FlightRecorder::new());
        let rec = Recorder::detached()
            .with_tracer(Arc::clone(&tracer))
            .with_flight(Arc::clone(&flight));
        {
            let root = rec.root_span("build");
            assert!(root.is_live());
            let ctx = rec.current_ctx();
            assert_eq!(ctx, root.context());
            let _child = rec.span_under("worker_task", ctx);
        }
        rec.event("retry", &[("attempt", 1u64.into())]);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        let worker = spans.iter().find(|s| s.name == "worker_task").unwrap();
        let build = spans.iter().find(|s| s.name == "build").unwrap();
        assert_eq!(worker.parent, Some(build.id));
        // Flight ring saw both spans plus the event.
        assert_eq!(flight.lines().len(), 3);
    }

    #[test]
    fn fatal_journals_and_dumps_the_flight_ring() {
        let dir = std::env::temp_dir().join(format!("vas-obs-fatal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let flight = Arc::new(FlightRecorder::new());
        flight.set_dump_path(dir.join("postmortem.jsonl"));
        let journal = Arc::new(Journal::in_memory());
        let rec = Recorder::detached()
            .with_journal(Arc::clone(&journal))
            .with_flight(Arc::clone(&flight));
        rec.event("retry", &[("attempt", 3u64.into())]);
        let path = rec
            .fatal("retries_exhausted")
            .expect("dump path configured");
        assert!(journal.contains_event("fatal"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().next().unwrap().contains("retries_exhausted"));
        assert!(text.contains("\"retry\""), "ring content reaches the dump");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clones_share_the_registry() {
        let rec = Recorder::detached();
        let clone = rec.clone();
        clone.inc(Counter::StreamChunksDecoded, 2);
        assert_eq!(
            rec.registry().get(Counter::StreamChunksDecoded),
            2,
            "clone must record into the same registry"
        );
    }
}
