//! The [`Recorder`] handle every instrumented component records through.

use crate::journal::{EventValue, Journal};
use crate::registry::{Counter, MetricsRegistry, Phase, ValueSeries};
use std::sync::Arc;
use std::time::Instant;

/// A cheap, cloneable handle bundling a metrics registry, an optional
/// event journal, and a timing switch.
///
/// Components hold a `Recorder` by value. The default is
/// [`Recorder::detached`]: a private registry, timing **off**, no journal —
/// counter-backed getters keep working, while the hot path performs zero
/// `Instant::now` calls and zero I/O (the off-the-data-path rule; see the
/// crate docs). Attaching a shared registry/journal via
/// [`Recorder::new`]/[`Recorder::with_journal`]/[`Recorder::with_timing`]
/// turns on full observability without touching any algorithmic state.
#[derive(Debug, Clone)]
pub struct Recorder {
    registry: Arc<MetricsRegistry>,
    journal: Option<Arc<Journal>>,
    timing: bool,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::detached()
    }
}

impl Recorder {
    /// The disabled/no-op mode: a fresh private registry, timing off, no
    /// journal. Counters still accumulate (they back public getters such as
    /// `VasSampler::kernel_lanes()`), but no wall clock is read and nothing
    /// is written anywhere.
    pub fn detached() -> Self {
        Self {
            registry: Arc::new(MetricsRegistry::new()),
            journal: None,
            timing: false,
        }
    }

    /// A recorder over a shared registry (timing still off; enable it with
    /// [`Recorder::with_timing`]).
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            registry,
            journal: None,
            timing: false,
        }
    }

    /// Attaches an event journal.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Enables or disables phase timing (wall-clock reads).
    pub fn with_timing(mut self, on: bool) -> Self {
        self.timing = on;
        self
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// Whether phase timing is enabled.
    pub fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// Adds `n` to `counter`.
    #[inline]
    pub fn inc(&self, counter: Counter, n: u64) {
        self.registry.inc(counter, n);
    }

    /// Restore-only counter overwrite (checkpoint resume; see
    /// [`MetricsRegistry::set`]).
    pub fn set_restored(&self, counter: Counter, value: u64) {
        self.registry.set(counter, value);
    }

    /// Records one observation into `series`.
    #[inline]
    pub fn record_value(&self, series: ValueSeries, value: u64) {
        self.registry.record_value(series, value);
    }

    /// Starts a phase-scoped timer; the elapsed time is recorded when the
    /// returned guard drops. When timing is disabled this is a true no-op:
    /// no `Instant::now` call is made on either end.
    #[inline]
    pub fn phase(&self, phase: Phase) -> PhaseGuard<'_> {
        PhaseGuard {
            recorder: self,
            phase,
            start: if self.timing {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Records an explicitly measured phase duration (for call sites that
    /// manage their own clock, e.g. worker stripes timed off-thread).
    pub fn record_phase_ns(&self, phase: Phase, ns: u64) {
        self.registry.record_phase(phase, ns);
    }

    /// Appends an event to the journal, if one is attached (otherwise a
    /// no-op — not even the timestamp is read).
    pub fn event(&self, kind: &str, fields: &[(&str, EventValue)]) {
        if let Some(journal) = &self.journal {
            journal.append(kind, fields);
        }
    }
}

/// RAII guard returned by [`Recorder::phase`]; records the elapsed
/// wall-clock time into the phase's total and latency histogram on drop.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    recorder: &'a Recorder,
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.recorder.registry.record_phase(self.phase, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_recorder_counts_but_never_times() {
        let rec = Recorder::detached();
        rec.inc(Counter::CoreAccepts, 1);
        {
            let _g = rec.phase(Phase::Fill);
        }
        rec.event("checkpoint_write", &[]);
        let snap = rec.registry().snapshot();
        assert_eq!(snap.counter(Counter::CoreAccepts), 1);
        // Timing off: the phase guard recorded nothing.
        assert_eq!(snap.phase_calls(Phase::Fill), 0);
        assert!(rec.journal().is_none());
    }

    #[test]
    fn enabled_recorder_times_and_journals() {
        let registry = Arc::new(MetricsRegistry::new());
        let journal = Arc::new(Journal::in_memory());
        let rec = Recorder::new(Arc::clone(&registry))
            .with_journal(Arc::clone(&journal))
            .with_timing(true);
        {
            let _g = rec.phase(Phase::ChunkDecode);
            std::hint::black_box(0u64);
        }
        rec.event("retry", &[("attempt", 1u64.into())]);
        let snap = registry.snapshot();
        assert_eq!(snap.phase_calls(Phase::ChunkDecode), 1);
        assert!(journal.contains_event("retry"));
    }

    #[test]
    fn clones_share_the_registry() {
        let rec = Recorder::detached();
        let clone = rec.clone();
        clone.inc(Counter::StreamChunksDecoded, 2);
        assert_eq!(
            rec.registry().get(Counter::StreamChunksDecoded),
            2,
            "clone must record into the same registry"
        );
    }
}
