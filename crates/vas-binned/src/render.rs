//! Heatmap rendering of pre-aggregated tiles.

use crate::pyramid::{TileCell, TilePyramid};
use vas_data::BoundingBox;
use vas_viz::{Canvas, Color, Colormap, Viewport};

/// A heatmap renderer that reuses its cell buffer across frames, so an
/// interactive pan/zoom session performs no per-frame query allocation.
#[derive(Debug, Clone, Default)]
pub struct HeatmapRenderer {
    cells: Vec<(BoundingBox, TileCell)>,
}

impl HeatmapRenderer {
    /// Creates a renderer with an empty (growable) cell buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the pyramid's answer for `region` as a count heatmap.
    ///
    /// The cell level is chosen automatically from the canvas resolution;
    /// each returned cell is filled with a color proportional to
    /// `log(1 + count)`, which is the conventional encoding for heavily
    /// skewed count data.
    pub fn render(
        &mut self,
        pyramid: &TilePyramid,
        region: &BoundingBox,
        width: usize,
        height: usize,
        colormap: Colormap,
    ) -> Canvas {
        let viewport = Viewport::new(*region, width, height);
        let mut canvas = Canvas::white(width, height);
        pyramid.query_for_render_into(region, width.max(height), &mut self.cells);
        if self.cells.is_empty() {
            return canvas;
        }
        let max_count = self
            .cells
            .iter()
            .map(|(_, c)| c.count)
            .max()
            .unwrap_or(1)
            .max(1);
        let scale = (1.0 + max_count as f64).ln();

        for (bb, cell) in &self.cells {
            let intensity = (1.0 + cell.count as f64).ln() / scale;
            let color = colormap.map(intensity);
            fill_rect(&mut canvas, &viewport, bb, color);
        }
        canvas
    }
}

/// One-shot convenience wrapper over [`HeatmapRenderer::render`]; per-frame
/// callers should hold a [`HeatmapRenderer`] to reuse its cell buffer.
pub fn render_heatmap(
    pyramid: &TilePyramid,
    region: &BoundingBox,
    width: usize,
    height: usize,
    colormap: Colormap,
) -> Canvas {
    HeatmapRenderer::new().render(pyramid, region, width, height, colormap)
}

/// Fills the pixel footprint of a data-space rectangle.
fn fill_rect(canvas: &mut Canvas, viewport: &Viewport, rect: &BoundingBox, color: Color) {
    let clipped = rect.intersection(&viewport.region());
    if clipped.is_empty() {
        return;
    }
    let (x0, y1) = viewport.to_pixel(&vas_data::Point::new(clipped.min_x, clipped.min_y));
    let (x1, y0) = viewport.to_pixel(&vas_data::Point::new(clipped.max_x, clipped.max_y));
    for y in y0.min(y1)..=y0.max(y1) {
        for x in x0.min(x1)..=x0.max(x1) {
            canvas.set(x, y, color);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pyramid::TilePyramidConfig;
    use vas_data::GeolifeGenerator;

    #[test]
    fn heatmap_covers_the_data_extent() {
        let d = GeolifeGenerator::with_size(10_000, 13).generate();
        let p = TilePyramid::build(&d, TilePyramidConfig { max_level: 7 });
        let canvas = render_heatmap(&p, &p.bounds(), 256, 256, Colormap::Heat);
        // A non-trivial share of the canvas is inked (the data covers a
        // sizeable part of its own bounding box at coarse levels).
        let ink = canvas.ink(Color::WHITE);
        assert!(ink > 256 * 256 / 50, "only {ink} inked pixels");
    }

    #[test]
    fn zoomed_heatmap_of_empty_region_is_blank() {
        let d = GeolifeGenerator::with_size(5_000, 14).generate();
        let p = TilePyramid::build(&d, TilePyramidConfig { max_level: 7 });
        // A region far outside the data is never inked.
        let outside = BoundingBox::new(
            p.bounds().max_x + 1.0,
            p.bounds().max_y + 1.0,
            p.bounds().max_x + 2.0,
            p.bounds().max_y + 2.0,
        );
        let canvas = render_heatmap(&p, &outside, 64, 64, Colormap::Heat);
        assert_eq!(canvas.ink(Color::WHITE), 0);
    }

    #[test]
    fn denser_cells_are_more_intense() {
        // Build a dataset with a hot corner and check pixel intensity there
        // exceeds intensity in a cold area.
        let mut points = Vec::new();
        for i in 0..9_000 {
            let t = i as f64 * 1e-4;
            points.push(vas_data::Point::new(
                0.1 + t.sin() * 0.05,
                0.1 + t.cos() * 0.05,
            ));
        }
        for i in 0..500 {
            points.push(vas_data::Point::new(0.9, 0.1 + i as f64 * 1e-4));
        }
        let d = vas_data::Dataset::from_points("corner", points);
        let p = TilePyramid::build(&d, TilePyramidConfig { max_level: 5 });
        let canvas = render_heatmap(&p, &p.bounds(), 128, 128, Colormap::Greys);
        // Greys maps higher intensity to darker pixels (lower luminance): the
        // darkest pixel of the left half (dense blob) must be darker than the
        // darkest pixel of the right half (sparse line).
        let darkest_in = |x0: usize, x1: usize| {
            let mut min = f64::INFINITY;
            for y in 0..canvas.height() {
                for x in x0..x1 {
                    min = min.min(canvas.get(x, y).luminance());
                }
            }
            min
        };
        assert!(darkest_in(0, 64) < darkest_in(64, 128));
    }
}
