//! The tile pyramid: multi-resolution pre-aggregated counts.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vas_data::{BoundingBox, Dataset, Point};

/// Configuration of a [`TilePyramid`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TilePyramidConfig {
    /// Deepest level to materialize; level `l` is a `2^l × 2^l` grid, so the
    /// finest grid has `4^max_level` potential cells.
    pub max_level: u8,
}

impl Default for TilePyramidConfig {
    fn default() -> Self {
        Self { max_level: 9 } // 512 × 512 at the finest level
    }
}

/// One aggregated cell of the pyramid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileCell {
    /// Grid column at the cell's level.
    pub col: u32,
    /// Grid row at the cell's level.
    pub row: u32,
    /// Number of tuples that fall in the cell.
    pub count: u64,
    /// Sum of the tuples' `value` attribute (for average-value heatmaps).
    pub value_sum: f64,
}

impl TileCell {
    /// Mean attribute value of the tuples aggregated into this cell.
    pub fn mean_value(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.value_sum / self.count as f64
        }
    }
}

/// A multi-resolution grid of pre-aggregated counts over a fixed extent.
///
/// Only non-empty cells are stored (sparse representation), which is what
/// makes the approach viable for skewed data; the storage cost reported by
/// [`total_cells`](TilePyramid::total_cells) is therefore the number of
/// non-empty cells across all levels.
#[derive(Debug, Clone)]
pub struct TilePyramid {
    bounds: BoundingBox,
    config: TilePyramidConfig,
    /// `levels[l]` maps `(col, row)` to the aggregated cell at level `l`.
    levels: Vec<HashMap<(u32, u32), TileCell>>,
    n_points: u64,
}

impl TilePyramid {
    /// Builds the pyramid from a dataset in a single pass over the points
    /// (each point updates one cell per level).
    ///
    /// # Panics
    /// Panics if the dataset is empty (there is no extent to aggregate over).
    pub fn build(dataset: &Dataset, config: TilePyramidConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot aggregate an empty dataset");
        let raw = dataset.bounds();
        // Degenerate extents (all points collinear) still need 2-D cells.
        let bounds = if raw.width() == 0.0 || raw.height() == 0.0 {
            raw.padded(1e-9)
        } else {
            raw
        };
        let mut levels: Vec<HashMap<(u32, u32), TileCell>> =
            vec![HashMap::new(); config.max_level as usize + 1];

        for p in dataset.iter() {
            for (level, cells) in levels.iter_mut().enumerate() {
                let (col, row) = cell_of(&bounds, p, level as u8);
                let entry = cells.entry((col, row)).or_insert(TileCell {
                    col,
                    row,
                    count: 0,
                    value_sum: 0.0,
                });
                entry.count += 1;
                entry.value_sum += p.value;
            }
        }

        Self {
            bounds,
            config,
            levels,
            n_points: dataset.len() as u64,
        }
    }

    /// The extent the pyramid covers.
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// The deepest materialized level.
    pub fn max_level(&self) -> u8 {
        self.config.max_level
    }

    /// Number of tuples aggregated.
    pub fn n_points(&self) -> u64 {
        self.n_points
    }

    /// Number of non-empty cells stored across all levels — the storage
    /// footprint of the "index".
    pub fn total_cells(&self) -> usize {
        self.levels.iter().map(HashMap::len).sum()
    }

    /// Number of non-empty cells at one level.
    pub fn cells_at(&self, level: u8) -> usize {
        self.levels
            .get(level as usize)
            .map(HashMap::len)
            .unwrap_or(0)
    }

    /// The level whose cell size best matches rendering `region` onto a
    /// canvas `pixels` wide: the shallowest level whose cells are no larger
    /// than a pixel, capped at `max_level`. This is the "choose a bin size
    /// ahead of time" limitation in executable form — beyond `max_level` the
    /// answer stops getting sharper.
    pub fn level_for(&self, region: &BoundingBox, pixels: usize) -> u8 {
        let pixels = pixels.max(1) as f64;
        // Cell width at level l is extent_width / 2^l; we want it <= region_width / pixels.
        let mut level = 0u8;
        while level < self.config.max_level {
            let cell_w = self.bounds.width() / 2f64.powi(level as i32);
            let cell_h = self.bounds.height() / 2f64.powi(level as i32);
            let target_w = region.width() / pixels;
            let target_h = region.height() / pixels;
            if cell_w <= target_w && cell_h <= target_h {
                break;
            }
            level += 1;
        }
        level
    }

    /// The non-empty cells at `level` that intersect `region`, together with
    /// their rectangles in data coordinates.
    ///
    /// Thin allocating wrapper over [`query_into`](Self::query_into); callers
    /// issuing one query per rendered frame should reuse a buffer instead.
    pub fn query(&self, region: &BoundingBox, level: u8) -> Vec<(BoundingBox, TileCell)> {
        let mut out = Vec::new();
        self.query_into(region, level, &mut out);
        out
    }

    /// Writes the non-empty cells at `level` that intersect `region` into
    /// `out`, clearing it first. The buffer's capacity is retained across
    /// calls, so a reused buffer makes per-frame queries allocation-free in
    /// the steady state.
    pub fn query_into(
        &self,
        region: &BoundingBox,
        level: u8,
        out: &mut Vec<(BoundingBox, TileCell)>,
    ) {
        out.clear();
        let level = level.min(self.config.max_level);
        let cells = &self.levels[level as usize];
        for cell in cells.values() {
            let bb = self.cell_bounds(level, cell.col, cell.row);
            if bb.intersects(region) {
                out.push((bb, *cell));
            }
        }
    }

    /// Convenience: query at the level appropriate for a `pixels`-wide render
    /// of `region`.
    pub fn query_for_render(
        &self,
        region: &BoundingBox,
        pixels: usize,
    ) -> (u8, Vec<(BoundingBox, TileCell)>) {
        let level = self.level_for(region, pixels);
        (level, self.query(region, level))
    }

    /// Buffer-reusing form of [`query_for_render`](Self::query_for_render):
    /// fills `out` and returns the chosen level.
    pub fn query_for_render_into(
        &self,
        region: &BoundingBox,
        pixels: usize,
        out: &mut Vec<(BoundingBox, TileCell)>,
    ) -> u8 {
        let level = self.level_for(region, pixels);
        self.query_into(region, level, out);
        level
    }

    /// Total tuple count inside `region`, computed from the finest level
    /// (cells partially overlapping the region are counted whole; binned
    /// aggregation cannot do better without touching raw data).
    pub fn approximate_count(&self, region: &BoundingBox) -> u64 {
        self.query(region, self.config.max_level)
            .iter()
            .map(|(_, c)| c.count)
            .sum()
    }

    /// The rectangle covered by a cell.
    pub fn cell_bounds(&self, level: u8, col: u32, row: u32) -> BoundingBox {
        let side = 2u32.pow(level as u32) as f64;
        let w = self.bounds.width() / side;
        let h = self.bounds.height() / side;
        BoundingBox::new(
            self.bounds.min_x + col as f64 * w,
            self.bounds.min_y + row as f64 * h,
            self.bounds.min_x + (col + 1) as f64 * w,
            self.bounds.min_y + (row + 1) as f64 * h,
        )
    }
}

/// The `(col, row)` cell a point falls into at `level` (clamped to the grid).
fn cell_of(bounds: &BoundingBox, p: &Point, level: u8) -> (u32, u32) {
    let side = 2u32.pow(level as u32);
    let fx = (p.x - bounds.min_x) / bounds.width();
    let fy = (p.y - bounds.min_y) / bounds.height();
    let col = ((fx * side as f64).floor() as i64).clamp(0, side as i64 - 1) as u32;
    let row = ((fy * side as f64).floor() as i64).clamp(0, side as i64 - 1) as u32;
    (col, row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::GeolifeGenerator;

    fn dataset() -> Dataset {
        GeolifeGenerator::with_size(20_000, 91).generate()
    }

    fn pyramid(max_level: u8) -> TilePyramid {
        TilePyramid::build(&dataset(), TilePyramidConfig { max_level })
    }

    #[test]
    fn counts_are_conserved_at_every_level() {
        let p = pyramid(6);
        for level in 0..=6u8 {
            let total: u64 = p
                .query(&p.bounds(), level)
                .iter()
                .map(|(_, c)| c.count)
                .sum();
            assert_eq!(total, p.n_points(), "level {level}");
        }
        // Level 0 has exactly one cell containing everything.
        assert_eq!(p.cells_at(0), 1);
    }

    #[test]
    fn value_sums_are_conserved() {
        let d = dataset();
        let p = TilePyramid::build(&d, TilePyramidConfig { max_level: 5 });
        let expected: f64 = d.points.iter().map(|pt| pt.value).sum();
        for level in [0u8, 3, 5] {
            let total: f64 = p
                .query(&p.bounds(), level)
                .iter()
                .map(|(_, c)| c.value_sum)
                .sum();
            assert!((total - expected).abs() < 1e-6 * expected.abs().max(1.0));
        }
    }

    #[test]
    fn deeper_levels_store_more_cells() {
        let p = pyramid(8);
        let mut prev = 0usize;
        for level in 0..=8u8 {
            let cells = p.cells_at(level);
            assert!(cells >= prev, "level {level} has fewer cells than {prev}");
            prev = cells;
        }
        assert!(p.total_cells() > p.cells_at(8));
    }

    #[test]
    fn level_selection_matches_resolution() {
        let p = pyramid(9);
        let overview = p.bounds();
        // Rendering the full extent at 512 px needs level 9 (2^9 = 512 cells).
        assert_eq!(p.level_for(&overview, 512), 9);
        // A tiny canvas needs only a shallow level.
        assert!(p.level_for(&overview, 4) <= 2);
        // Zooming into 1/8 of the extent per axis at 512 px would need level
        // 12 — more than materialized, so the answer saturates at max_level.
        let zoom = overview.subregion(0.4, 0.4, 0.525, 0.525);
        assert_eq!(p.level_for(&zoom, 512), 9);
    }

    #[test]
    fn query_returns_only_intersecting_cells() {
        let p = pyramid(6);
        let region = p.bounds().subregion(0.0, 0.0, 0.25, 0.25);
        for (bb, _) in p.query(&region, 6) {
            assert!(bb.intersects(&region));
        }
    }

    #[test]
    fn approximate_count_brackets_the_true_count() {
        let d = dataset();
        let p = TilePyramid::build(&d, TilePyramidConfig { max_level: 9 });
        let region = p.bounds().subregion(0.3, 0.3, 0.6, 0.7);
        let truth = d.filter_region(&region).len() as u64;
        let approx = p.approximate_count(&region);
        // Whole-cell counting can only over-count, and at level 9 the
        // over-count is bounded by the boundary cells.
        assert!(approx >= truth);
        assert!(
            (approx as f64) <= (truth as f64) * 1.3 + 50.0,
            "approx {approx} vs truth {truth}"
        );
    }

    #[test]
    fn deep_zoom_resolution_is_capped() {
        // The limitation the paper calls out: beyond the pre-chosen bin size,
        // zooming in does not reveal more cells.
        let p = pyramid(5);
        let tiny = p.bounds().subregion(0.5, 0.5, 0.501, 0.501);
        let (level, cells) = p.query_for_render(&tiny, 512);
        assert_eq!(level, 5);
        assert!(
            cells.len() <= 4,
            "deep zoom shows only {} coarse cells",
            cells.len()
        );
    }

    #[test]
    fn degenerate_collinear_data_is_handled() {
        let d = Dataset::from_points(
            "line",
            (0..100).map(|i| Point::new(i as f64, 5.0)).collect(),
        );
        let p = TilePyramid::build(&d, TilePyramidConfig { max_level: 4 });
        assert_eq!(p.n_points(), 100);
        assert_eq!(p.approximate_count(&p.bounds()), 100);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_dataset() {
        let empty = Dataset::from_points("none", vec![]);
        let _ = TilePyramid::build(&empty, TilePyramidConfig::default());
    }
}
