//! # vas-binned
//!
//! A binned-aggregation baseline in the style of imMens / Nanocubes, built to
//! contrast VAS against the *pre-aggregation* family of visualization
//! accelerators that the paper discusses in its related-work section
//! (Section VII).
//!
//! Binned aggregation divides the data domain into a pyramid of tiles: level
//! `l` is a `2^l × 2^l` grid over the dataset extent, and each cell stores the
//! tuple count (and the sum of the value column, so average-value heatmaps can
//! be rendered). Queries pick the deepest pre-built level that still matches
//! the viewport's pixel resolution and return the intersecting cells.
//!
//! The approach is extremely fast at the zoom levels it was built for, but —
//! as the paper points out — "the exact bins are chosen ahead of time, and
//! certain operations — such as zooming — entail either choosing a very small
//! bin size (and thus worse performance) or living with low-resolution
//! results". The [`pyramid::TilePyramid`] type makes that trade-off
//! measurable: its storage grows with the maximum level while its effective
//! resolution under deep zoom is capped, which is exactly the comparison the
//! `binned_comparison` harness binary runs against VAS samples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pyramid;
pub mod render;

pub use pyramid::{TileCell, TilePyramid, TilePyramidConfig};
pub use render::{render_heatmap, HeatmapRenderer};
