//! # vas-par
//!
//! The deterministic parallel execution substrate of the VAS reproduction.
//!
//! Every hot loop in this workspace lives under a hard contract pinned by
//! `tests/determinism.rs`: the same input stream must produce **bit-identical**
//! output, run to run, thread count to thread count. That rules out the usual
//! "throw rayon at it" approach twice over — the build environment cannot
//! vendor rayon, and work-stealing reductions fold results in a
//! scheduling-dependent order, which changes floating-point sums by an ulp and
//! the sampler's replacement decisions with them.
//!
//! This crate supplies the two primitives the rest of the workspace
//! parallelizes with instead, both built directly on [`std::thread`]:
//!
//! * **Ordered fan-out/fan-in combinators** ([`exec`]) — input is split into
//!   *contiguous index ranges*, one scoped worker per range, and results are
//!   concatenated (or folded) in **range order**. Whatever the OS scheduler
//!   does, the fan-in observes results in exactly the order a sequential loop
//!   would have produced them, so a deterministic per-item function yields a
//!   deterministic combined result at any thread count.
//! * **A double-buffered background pipeline stage** ([`pipeline`]) — a
//!   producer running on its own worker thread feeding a bounded channel,
//!   with an epoch/rewind protocol so consumers can `reset` mid-stream
//!   without tearing down the worker. `vas-stream`'s `PrefetchSource` is
//!   this stage wrapped around a `PointSource`.
//! * **A free-running scatter pipeline** ([`scatter`]) — one producer
//!   routing items to `S` persistent workers over bounded queues, fan-in in
//!   consumer order. The sharded sampling path fans out one Interchange
//!   sampler per shard through it; because the stages are decoupled by the
//!   queues, shard workers evaluate batch `b` while the producer is already
//!   decoding and routing batch `b + 1` — the free-running batch pipelining
//!   the lock-step read-ahead path could not express.
//!
//! Workers are **scoped**: they are spawned inside each combinator call via
//! [`std::thread::scope`] and joined before it returns, so closures may borrow
//! from the caller's stack (the Interchange pre-evaluation workers share the
//! live spatial index by reference). A persistent pool would require either
//! `'static` tasks or `unsafe` lifetime erasure; the workspace forbids
//! `unsafe`, and thread spawn cost (~10µs) is noise at the chunk granularity
//! (thousands of points) every caller fans out at.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod pipeline;
pub mod scatter;

pub use exec::{
    effective_threads, par_chunk_fold_ordered, par_map_ordered, par_map_vec_ordered,
    par_map_vec_ordered_recorded, split_ranges, try_par_map_ordered, try_par_map_ordered_recorded,
    WorkerPanic,
};
pub use pipeline::{ReadAhead, Stage, Step};
pub use scatter::scatter_ordered;
