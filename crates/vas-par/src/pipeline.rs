//! A double-buffered background pipeline stage.
//!
//! [`ReadAhead`] moves a [`Stage`] (a rewindable producer of items — chunk
//! decoding, dataset generation, CSV parsing) onto its own worker thread and
//! connects it to the consumer through a **bounded** channel: while the
//! consumer processes item *n*, the worker is already producing item *n+1*
//! (and, with the default depth of 2, staging *n+2*). Order is preserved
//! end-to-end — the channel is FIFO and there is exactly one producer — so a
//! deterministic stage stays deterministic behind the pipeline.
//!
//! ## The epoch protocol
//!
//! Consumers can [`reset`](ReadAhead::reset) mid-stream (the Interchange
//! sampler rescans its source once per refinement pass). Tearing the worker
//! down and respawning would serialize every pass boundary, so instead every
//! message carries an **epoch** number:
//!
//! * `reset` bumps the consumer's epoch and sends a `Scan(epoch)` command;
//! * the worker abandons its current scan when it sees a newer command,
//!   rewinds the stage, and starts emitting messages tagged with the new
//!   epoch;
//! * the consumer silently discards messages from older epochs.
//!
//! The worker polls the command queue between items, so the only place it can
//! linger is blocked on the full data channel — and the consumer drains that
//! channel on its way to the next current-epoch message, which unblocks the
//! worker. Neither side ever blocks on a condition the other side cannot
//! clear, including at shutdown (drop sends `Shutdown`, then drains until the
//! worker hangs up).
//!
//! Spent items can be handed back through [`recycle`](ReadAhead::recycle);
//! the worker reuses them as scratch (a `Vec` keeps its capacity), making the
//! steady state allocation-free for buffer-shaped items.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TryRecvError};
use std::sync::Arc;

/// Outcome of one production step of a [`Stage`].
#[derive(Debug)]
pub enum Step<T, E> {
    /// One produced item.
    Item(T),
    /// The current scan is exhausted (a later rewind may restart it).
    Done,
    /// The scan failed; the stage stays parked until the next rewind.
    Fail(E),
}

/// A rewindable producer that [`ReadAhead`] runs on a worker thread.
///
/// Implementations receive an optional recycled item (same shape as what they
/// produce) to reuse as scratch space.
pub trait Stage: Send + 'static {
    /// The produced item type (typically a buffer, e.g. `Vec<Point>`).
    type Item: Send + 'static;
    /// The error type scans can fail with.
    type Error: Send + 'static;

    /// Produces the next item of the current scan. `reuse` is a spent item
    /// handed back by the consumer, if one is available.
    fn next(&mut self, reuse: Option<Self::Item>) -> Step<Self::Item, Self::Error>;

    /// Rewinds the stage so the next [`next`](Self::next) call produces the
    /// first item again.
    fn rewind(&mut self) -> Result<(), Self::Error>;
}

enum Command {
    Scan(u64),
    Shutdown,
}

enum Message<T, E> {
    Item(u64, T),
    Done(u64),
    Fail(u64, E),
}

/// Handle to a [`Stage`] running ahead of the consumer on a worker thread.
/// See the [module docs](self) for the protocol.
pub struct ReadAhead<S: Stage> {
    cmd_tx: Sender<Command>,
    data_rx: Receiver<Message<S::Item, S::Error>>,
    recycle_tx: Sender<S::Item>,
    epoch: u64,
    finished: bool,
    occupancy: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl<S: Stage> std::fmt::Debug for ReadAhead<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadAhead")
            .field("epoch", &self.epoch)
            .field("finished", &self.finished)
            .finish()
    }
}

impl<S: Stage> ReadAhead<S> {
    /// Moves `stage` onto a worker thread and starts the first scan
    /// immediately (the stage is rewound first, so the pipeline always
    /// begins at the stream's first item). `depth` is the bounded channel
    /// capacity — how many produced items may sit ready ahead of the
    /// consumer; `2` gives classic double buffering.
    ///
    /// # Panics
    /// Panics if `depth` is zero.
    pub fn spawn(stage: S, depth: usize) -> Self {
        assert!(depth > 0, "read-ahead depth must be positive");
        let (cmd_tx, cmd_rx) = std::sync::mpsc::channel::<Command>();
        let (data_tx, data_rx) = std::sync::mpsc::sync_channel::<Message<S::Item, S::Error>>(depth);
        let (recycle_tx, recycle_rx) = std::sync::mpsc::channel::<S::Item>();
        let occupancy = Arc::new(AtomicU64::new(0));
        let gauge = Arc::clone(&occupancy);
        let handle = std::thread::Builder::new()
            .name("vas-par-read-ahead".to_string())
            .spawn(move || worker(stage, cmd_rx, data_tx, recycle_rx, gauge))
            .expect("spawn read-ahead worker");
        cmd_tx.send(Command::Scan(0)).expect("worker alive");
        Self {
            cmd_tx,
            data_rx,
            recycle_tx,
            epoch: 0,
            finished: false,
            occupancy,
            handle: Some(handle),
        }
    }

    /// Number of produced items currently buffered in the channel ahead of
    /// the consumer (0 = the consumer outran the worker, `depth` = fully
    /// buffered). Purely observational — reading it never blocks or
    /// synchronizes either side; `vas-stream`'s `PrefetchSource` samples it
    /// into the `read_ahead_occupancy` series at each receive.
    pub fn occupancy(&self) -> u64 {
        self.occupancy.load(Ordering::Relaxed)
    }

    /// Receives the next item of the current scan.
    ///
    /// * `Ok(Some(item))` — the next item, in production order.
    /// * `Ok(None)` — the current scan is exhausted; stays exhausted until
    ///   [`reset`](Self::reset).
    /// * `Err(e)` — the scan failed; also parks the pipeline until `reset`.
    pub fn recv(&mut self) -> Result<Option<S::Item>, S::Error> {
        if self.finished {
            return Ok(None);
        }
        loop {
            let msg = self.data_rx.recv().expect("read-ahead worker disconnected");
            if matches!(msg, Message::Item(..)) {
                self.occupancy.fetch_sub(1, Ordering::Relaxed);
            }
            match msg {
                Message::Item(epoch, item) if epoch == self.epoch => return Ok(Some(item)),
                Message::Done(epoch) if epoch == self.epoch => {
                    self.finished = true;
                    return Ok(None);
                }
                Message::Fail(epoch, e) if epoch == self.epoch => {
                    self.finished = true;
                    return Err(e);
                }
                // Stale message from a scan that was reset away: discard.
                Message::Item(..) | Message::Done(..) | Message::Fail(..) => continue,
            }
        }
    }

    /// Starts a fresh scan from the first item. Cheap: the worker abandons
    /// whatever it was producing and rewinds in place.
    pub fn reset(&mut self) {
        self.epoch += 1;
        self.finished = false;
        self.cmd_tx
            .send(Command::Scan(self.epoch))
            .expect("read-ahead worker disconnected");
    }

    /// Hands a spent item back to the worker for reuse as scratch space.
    pub fn recycle(&mut self, item: S::Item) {
        // A dead worker cannot reuse anything; dropping the item is fine.
        let _ = self.recycle_tx.send(item);
    }
}

impl<S: Stage> Drop for ReadAhead<S> {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(Command::Shutdown);
        // Drain until the worker drops its sender, so a worker blocked on the
        // full data channel can make progress, see the shutdown command and
        // exit.
        while self.data_rx.recv().is_ok() {}
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The worker loop: wait for a scan command, rewind, stream items tagged with
/// the scan's epoch, abandoning the scan whenever a newer command arrives.
fn worker<S: Stage>(
    mut stage: S,
    cmd_rx: Receiver<Command>,
    data_tx: SyncSender<Message<S::Item, S::Error>>,
    recycle_rx: Receiver<S::Item>,
    occupancy: Arc<AtomicU64>,
) {
    let mut pending: Option<Command> = None;
    loop {
        let cmd = match pending.take() {
            Some(cmd) => cmd,
            None => match cmd_rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => return, // consumer dropped
            },
        };
        let epoch = match cmd {
            Command::Shutdown => return,
            Command::Scan(epoch) => epoch,
        };
        if let Err(e) = stage.rewind() {
            if data_tx.send(Message::Fail(epoch, e)).is_err() {
                return;
            }
            continue;
        }
        loop {
            // A newer command outdates this scan.
            match cmd_rx.try_recv() {
                Ok(cmd) => {
                    pending = Some(cmd);
                    break;
                }
                Err(TryRecvError::Disconnected) => return,
                Err(TryRecvError::Empty) => {}
            }
            let reuse = recycle_rx.try_recv().ok();
            let message = match stage.next(reuse) {
                Step::Item(item) => Message::Item(epoch, item),
                Step::Done => Message::Done(epoch),
                Step::Fail(e) => Message::Fail(epoch, e),
            };
            let terminal = !matches!(message, Message::Item(..));
            if !terminal {
                // Counted before the send so a blocked send still shows as a
                // full channel from the consumer's side.
                occupancy.fetch_add(1, Ordering::Relaxed);
            }
            if data_tx.send(message).is_err() {
                return; // consumer dropped
            }
            if terminal {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts 0..n, failing at `fail_at` if set.
    struct Counter {
        n: u64,
        next: u64,
        fail_at: Option<u64>,
        rewinds: u64,
    }

    impl Stage for Counter {
        type Item = u64;
        type Error = String;

        fn next(&mut self, _reuse: Option<u64>) -> Step<u64, String> {
            if Some(self.next) == self.fail_at {
                return Step::Fail(format!("failed at {}", self.next));
            }
            if self.next >= self.n {
                return Step::Done;
            }
            let v = self.next;
            self.next += 1;
            Step::Item(v)
        }

        fn rewind(&mut self) -> Result<(), String> {
            self.next = 0;
            self.rewinds += 1;
            Ok(())
        }
    }

    fn counter(n: u64) -> Counter {
        Counter {
            n,
            next: 0,
            fail_at: None,
            rewinds: 0,
        }
    }

    #[test]
    fn streams_every_item_in_order() {
        let mut ahead = ReadAhead::spawn(counter(100), 2);
        let mut got = Vec::new();
        while let Some(v) = ahead.recv().unwrap() {
            got.push(v);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        // Exhausted stays exhausted without a reset.
        assert_eq!(ahead.recv().unwrap(), None);
        assert_eq!(ahead.recv().unwrap(), None);
    }

    #[test]
    fn reset_restarts_from_the_first_item() {
        let mut ahead = ReadAhead::spawn(counter(50), 2);
        // Consume part of the stream, then reset mid-scan.
        for expect in 0..20 {
            assert_eq!(ahead.recv().unwrap(), Some(expect));
        }
        ahead.reset();
        let mut got = Vec::new();
        while let Some(v) = ahead.recv().unwrap() {
            got.push(v);
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        // And again after exhaustion.
        ahead.reset();
        assert_eq!(ahead.recv().unwrap(), Some(0));
    }

    #[test]
    fn errors_surface_and_park_the_stream() {
        let mut ahead = ReadAhead::spawn(
            Counter {
                n: 10,
                next: 0,
                fail_at: Some(3),
                rewinds: 0,
            },
            2,
        );
        assert_eq!(ahead.recv().unwrap(), Some(0));
        assert_eq!(ahead.recv().unwrap(), Some(1));
        assert_eq!(ahead.recv().unwrap(), Some(2));
        let err = ahead.recv().unwrap_err();
        assert!(err.contains("failed at 3"));
        // Parked after the failure.
        assert_eq!(ahead.recv().unwrap(), None);
    }

    #[test]
    fn rapid_resets_converge_on_the_latest_epoch() {
        let mut ahead = ReadAhead::spawn(counter(1_000), 1);
        for _ in 0..20 {
            ahead.reset();
        }
        assert_eq!(ahead.recv().unwrap(), Some(0));
        assert_eq!(ahead.recv().unwrap(), Some(1));
    }

    #[test]
    fn drop_mid_stream_does_not_hang() {
        let ahead = ReadAhead::spawn(counter(1_000_000), 2);
        drop(ahead); // worker is mid-scan and likely blocked on the channel
    }

    #[test]
    fn recycling_is_accepted() {
        let mut ahead = ReadAhead::spawn(counter(10), 2);
        let v = ahead.recv().unwrap().unwrap();
        ahead.recycle(v);
        while ahead.recv().unwrap().is_some() {}
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_is_rejected() {
        let _ = ReadAhead::spawn(counter(1), 0);
    }

    #[test]
    fn occupancy_tracks_buffered_items_and_drains_to_zero() {
        let mut ahead = ReadAhead::spawn(counter(10), 2);
        let mut seen_any = false;
        while let Some(_v) = ahead.recv().unwrap() {
            seen_any = true;
            // Gauge is observational and racy by design, but always sane.
            assert!(ahead.occupancy() <= 3, "occupancy {}", ahead.occupancy());
        }
        assert!(seen_any);
        // Stream exhausted and drained: nothing can be buffered.
        assert_eq!(ahead.occupancy(), 0);
    }
}
