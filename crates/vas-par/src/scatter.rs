//! Free-running scatter pipeline: one producer feeding per-consumer bounded
//! queues, fan-in in consumer order.
//!
//! [`scatter_ordered`] is the execution backbone of the sharded sampling
//! path (`vas-core::shard`): the calling thread routes stream items to `S`
//! persistent worker threads through bounded channels, each worker folds its
//! items into its own consumer state, and when the producer is done every
//! worker finalizes and the results come back **in consumer order**.
//!
//! Unlike the barrier-style combinators in [`crate::exec`], the stages here
//! are *free-running*: the producer decodes and routes batch `b + 1` while
//! workers are still applying batch `b` — the queue depth is the only
//! coupling. This retires the long-standing pipelining gap of the chunked
//! read-ahead path, where the consumer and the pre-evaluation front advanced
//! in lock-step per batch: here nothing ever waits at a batch boundary
//! unless a queue is full (back-pressure) or empty (starvation).
//!
//! Determinism is preserved by construction: each channel is FIFO and each
//! consumer is owned by exactly one worker, so consumer `i` observes exactly
//! the sub-sequence of items the producer routed to `i`, in producer order —
//! independent of queue depth, scheduling, or how the producer batched its
//! input. For a deterministic routing function and fold, the result is
//! therefore bit-identical to feeding each consumer sequentially.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use vas_obs::{Counter, Phase, Recorder};

/// Runs a producer/`S`-consumer scatter pipeline and returns each consumer's
/// finish value, in consumer order.
///
/// * `consumers` — one owned state per consumer; each is moved onto its own
///   worker thread.
/// * `feed` — runs on the calling thread. It receives a `send(i, item)`
///   closure that routes `item` to consumer `i`, returning `false` when that
///   consumer is gone (its worker panicked); a producer seeing `false`
///   should stop feeding and return, letting the join below surface the
///   panic. `feed`'s error aborts the pipeline: queues are closed, workers
///   drain and finalize, and the error is returned (finish values are
///   discarded).
/// * `work(i, &mut consumer, item)` — applies one item to consumer `i`, on
///   that consumer's worker thread, in routed order.
/// * `finish(i, consumer)` — finalizes consumer `i` on its worker thread
///   after its queue is drained and closed.
///
/// `depth` bounds each queue (in items; clamped to at least 1): the producer
/// blocks when a consumer falls `depth` items behind, which caps memory at
/// `S × depth` in-flight items and keeps a slow shard from letting the
/// producer race unboundedly ahead.
///
/// Observability: the call counts one `par_tasks_executed` per worker, and
/// each worker's lifetime is timed into the `worker_task` phase and traced
/// as a `worker_task` span (with a `shard` attribute) parented under the
/// caller's open span — a traced sharded build shows `S` worker subtrees
/// under one root. With a detached recorder all of that is inert.
///
/// A panic in `work` or `finish` propagates to the caller after all workers
/// have joined.
pub fn scatter_ordered<T, C, R, E, Feed, Work, Finish>(
    recorder: &Recorder,
    depth: usize,
    consumers: Vec<C>,
    feed: Feed,
    work: Work,
    finish: Finish,
) -> Result<Vec<R>, E>
where
    T: Send,
    C: Send,
    R: Send,
    Feed: FnOnce(&mut dyn FnMut(usize, T) -> bool) -> Result<(), E>,
    Work: Fn(usize, &mut C, T) + Sync,
    Finish: Fn(usize, C) -> R + Sync,
{
    let depth = depth.max(1);
    let workers = consumers.len();
    recorder.inc(Counter::ParTasksExecuted, workers.max(1) as u64);
    // Captured on the producer thread so worker-task spans parent under the
    // caller's open span (the sharded-build root), not float as roots.
    let parent = recorder.current_ctx();
    let mut channels: Vec<(SyncSender<T>, Option<Receiver<T>>)> = (0..workers)
        .map(|_| {
            let (tx, rx) = sync_channel::<T>(depth);
            (tx, Some(rx))
        })
        .collect();
    std::thread::scope(|scope| {
        let work = &work;
        let finish = &finish;
        let handles: Vec<_> = channels
            .iter_mut()
            .zip(consumers)
            .enumerate()
            .map(|(i, ((_, rx), mut consumer))| {
                let rx = rx.take().expect("receiver taken once");
                scope.spawn(move || {
                    let _guard = recorder.phase(Phase::WorkerTask);
                    let mut span = recorder.span_under("worker_task", parent);
                    span.attr("shard", i);
                    while let Ok(item) = rx.recv() {
                        work(i, &mut consumer, item);
                    }
                    finish(i, consumer)
                })
            })
            .collect();
        let mut send = |i: usize, item: T| channels[i].0.send(item).is_ok();
        let fed = feed(&mut send);
        // Close every queue so workers drain and finalize, then join them
        // unconditionally — a worker panic propagates here even when the
        // producer bailed out first.
        drop(channels);
        let mut results = Vec::with_capacity(workers);
        for h in handles {
            results.push(h.join().expect("vas-par scatter worker panicked"));
        }
        fed.map(|()| results)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Routes `values` round-robin to `shards` accumulating folds and
    /// returns the per-shard sums.
    fn pipeline_sums(depth: usize, shards: usize, values: &[f64]) -> Vec<f64> {
        scatter_ordered(
            &Recorder::detached(),
            depth,
            vec![0.0f64; shards],
            |send| {
                for (i, v) in values.iter().enumerate() {
                    assert!(send(i % shards, *v));
                }
                Ok::<(), ()>(())
            },
            // An order-sensitive fold: any reordering flips result bits.
            |_, acc, v| *acc = (*acc + v) * 1.000000001,
            |_, acc| acc,
        )
        .unwrap()
    }

    #[test]
    fn matches_sequential_fold_at_any_depth() {
        let values: Vec<f64> = (0..1_000).map(|i| (i as f64).sin()).collect();
        let shards = 4;
        let mut reference = vec![0.0f64; shards];
        for (i, v) in values.iter().enumerate() {
            let acc = &mut reference[i % shards];
            *acc = (*acc + v) * 1.000000001;
        }
        for depth in [1usize, 2, 64, 10_000] {
            let got = pipeline_sums(depth, shards, &values);
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "depth {depth}");
            }
        }
    }

    #[test]
    fn empty_feed_still_finalizes_every_consumer() {
        let got = scatter_ordered(
            &Recorder::detached(),
            8,
            vec![(); 3],
            |_send| Ok::<(), ()>(()),
            |_, _, _: u32| {},
            |i, ()| i * 10,
        )
        .unwrap();
        assert_eq!(got, vec![0, 10, 20]);
    }

    #[test]
    fn feed_error_aborts_and_joins_workers() {
        let err = scatter_ordered(
            &Recorder::detached(),
            4,
            vec![0u64; 2],
            |send| {
                assert!(send(0, 1u64));
                Err("decode failed")
            },
            |_, acc, v| *acc += v,
            |_, acc| acc,
        )
        .unwrap_err();
        assert_eq!(err, "decode failed");
    }

    #[test]
    fn worker_panic_propagates_and_send_reports_the_dead_shard() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(|| {
            scatter_ordered(
                &Recorder::detached(),
                1,
                vec![0u64; 2],
                |send| {
                    // Shard 0 panics on the first item; keep sending until
                    // the channel reports it is gone, then stop feeding.
                    let mut alive = true;
                    for _ in 0..1_000 {
                        alive = send(0, 7u64);
                        if !alive {
                            break;
                        }
                    }
                    assert!(!alive, "dead shard must surface through send");
                    Ok::<(), ()>(())
                },
                |_, _, _| panic!("boom"),
                |_, acc| acc,
            )
        });
        std::panic::set_hook(prev);
        assert!(result.is_err(), "worker panic must propagate after join");
    }

    #[test]
    fn records_worker_tasks_and_spans_under_the_caller() {
        use std::sync::Arc;
        let tracer = Arc::new(vas_obs::Tracer::new());
        let rec = Recorder::detached()
            .with_tracer(Arc::clone(&tracer))
            .with_timing(true);
        let consumer_id;
        {
            let root = rec.span("consumer_build");
            consumer_id = root.context().unwrap().span_id();
            let got = scatter_ordered(
                &rec,
                4,
                vec![0u64; 3],
                |send| {
                    for i in 0..30usize {
                        assert!(send(i % 3, i as u64));
                    }
                    Ok::<(), ()>(())
                },
                |_, acc, v| *acc += v,
                |_, acc| acc,
            )
            .unwrap();
            assert_eq!(got.iter().sum::<u64>(), (0..30).sum::<u64>());
        }
        let snap = rec.registry().snapshot();
        assert_eq!(snap.counter(Counter::ParTasksExecuted), 3);
        assert_eq!(snap.phase_calls(Phase::WorkerTask), 3);
        let spans = tracer.spans();
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker_task").collect();
        assert_eq!(workers.len(), 3);
        for w in &workers {
            assert_eq!(w.parent, Some(consumer_id));
            assert!(w.attrs.iter().any(|(k, _)| k == "shard"));
        }
    }

    #[test]
    fn producer_runs_ahead_of_a_slow_consumer_up_to_depth() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // With depth 8 and a consumer parked on a gate, the producer must be
        // able to enqueue 8 items without blocking — free-running, not
        // lock-step.
        let gate = AtomicBool::new(false);
        let got = scatter_ordered(
            &Recorder::detached(),
            8,
            vec![0usize; 1],
            |send| {
                for _ in 0..8 {
                    assert!(send(0, 1usize));
                }
                // All 8 enqueued while the consumer never ran an item.
                gate.store(true, Ordering::SeqCst);
                Ok::<(), ()>(())
            },
            |_, acc, v| {
                while !gate.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                *acc += v;
            },
            |_, acc| acc,
        )
        .unwrap();
        assert_eq!(got, vec![8]);
    }
}
