//! Ordered fan-out/fan-in combinators over scoped threads.
//!
//! All combinators share one structure: the input is split into contiguous
//! index ranges with [`split_ranges`], each range is processed by one worker
//! (the calling thread takes the first range itself, so `threads = 1` spawns
//! nothing and is exactly the sequential loop), and the per-range results are
//! combined **in range order**. Because the split depends only on
//! `(len, threads)` and the fan-in order is fixed, a deterministic per-item
//! function gives a combined result that is bit-identical to the sequential
//! left-to-right evaluation — the property the determinism suite pins.

use std::ops::Range;
use vas_obs::{Counter, Phase, Recorder};

/// Resolves a requested worker count: `0` means "ask the OS"
/// ([`std::thread::available_parallelism`]), anything else is taken
/// literally. Always at least 1.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
    .max(1)
}

/// Splits `0..len` into at most `parts` contiguous, near-equal, non-empty
/// ranges covering every index exactly once, in ascending order.
///
/// The first `len % parts` ranges are one element longer, so range sizes
/// differ by at most one. Depends only on `(len, parts)` — the split is the
/// deterministic backbone of every combinator in this module.
pub fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(len);
    if len == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// Maps `f(index, &item)` over a slice with up to `threads` scoped workers,
/// returning the results **in input order** — bit-identical to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` whenever `f`
/// is deterministic.
///
/// The slice is split into contiguous ranges ([`split_ranges`]); each worker
/// fills a private vector for its range and the vectors are concatenated in
/// range order. With `threads <= 1` (or a single-range split) no thread is
/// spawned.
///
/// A panic in `f` propagates to the caller after all workers have joined.
pub fn par_map_ordered<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let ranges = split_ranges(items.len(), effective_threads(threads));
    if ranges.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut per_range: Vec<Vec<R>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges[1..]
            .iter()
            .map(|range| {
                let range = range.clone();
                scope.spawn(move || {
                    items[range.clone()]
                        .iter()
                        .zip(range)
                        .map(|(t, i)| f(i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        // The calling thread is worker 0.
        let first: Vec<R> = items[ranges[0].clone()]
            .iter()
            .zip(ranges[0].clone())
            .map(|(t, i)| f(i, t))
            .collect();
        let mut out = Vec::with_capacity(ranges.len());
        out.push(first);
        for h in handles {
            out.push(h.join().expect("vas-par worker panicked"));
        }
        out
    });
    let mut result = Vec::with_capacity(items.len());
    for v in &mut per_range {
        result.append(v);
    }
    result
}

/// Owned-input variant of [`par_map_ordered`]: consumes `items`, hands each
/// element to exactly one worker, and returns `f(index, item)` results in
/// input order. Used where the mapped values cannot be borrowed (e.g. running
/// a ladder of independently-owned samplers).
pub fn par_map_vec_ordered<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_vec_inner(threads, items, f, None)
}

/// [`par_map_vec_ordered`] with observability: bit-identical results, plus
/// worker stripes counted into `par_tasks_executed` and timed into the
/// `worker_task` phase when the recorder has timing enabled.
pub fn par_map_vec_ordered_recorded<T, R, F>(
    recorder: &Recorder,
    threads: usize,
    items: Vec<T>,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_vec_inner(threads, items, f, Some(recorder))
}

fn par_map_vec_inner<T, R, F>(
    threads: usize,
    items: Vec<T>,
    f: F,
    recorder: Option<&Recorder>,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let ranges = split_ranges(items.len(), effective_threads(threads));
    if let Some(rec) = recorder {
        rec.inc(Counter::ParTasksExecuted, ranges.len().max(1) as u64);
    }
    // Captured on the consuming thread so worker-task spans on spawned
    // threads parent under the caller's open span, not float as roots.
    let parent = recorder.and_then(|rec| rec.current_ctx());
    if ranges.len() <= 1 {
        let _guard = recorder.map(|rec| rec.phase(Phase::WorkerTask));
        let _span = recorder.map(|rec| rec.span_under("worker_task", parent));
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    // Carve the owned input into one sub-vector per range, preserving order.
    let mut stripes: Vec<(Range<usize>, Vec<T>)> = Vec::with_capacity(ranges.len());
    let mut rest = items;
    for range in ranges.iter().rev() {
        let tail = rest.split_off(range.start);
        stripes.push((range.clone(), tail));
    }
    stripes.reverse();
    let run_stripe = |range: Range<usize>, stripe: Vec<T>| -> Vec<R> {
        let _guard = recorder.map(|rec| rec.phase(Phase::WorkerTask));
        let mut span = recorder
            .map(|rec| rec.span_under("worker_task", parent))
            .unwrap_or_else(vas_obs::SpanGuard::noop);
        span.attr("stripe_start", range.start);
        span.attr("stripe_len", range.len());
        stripe
            .into_iter()
            .zip(range)
            .map(|(t, i)| f(i, t))
            .collect()
    };
    let mut per_range: Vec<Vec<R>> = std::thread::scope(|scope| {
        let run_stripe = &run_stripe;
        let mut stripes = stripes.into_iter();
        let (first_range, first_items) = stripes.next().expect("at least one range");
        let handles: Vec<_> = stripes
            .map(|(range, stripe)| scope.spawn(move || run_stripe(range, stripe)))
            .collect();
        let first: Vec<R> = run_stripe(first_range, first_items);
        let mut out = Vec::with_capacity(1 + handles.len());
        out.push(first);
        for h in handles {
            out.push(h.join().expect("vas-par worker panicked"));
        }
        out
    });
    let mut result = Vec::new();
    for v in &mut per_range {
        result.append(v);
    }
    result
}

/// One or more workers of a contained fan-out panicked.
///
/// Returned by [`try_par_map_ordered`] instead of re-raising the panic, so
/// callers can degrade to a sequential fallback (the pattern the Interchange
/// speculation front uses) rather than unwind the whole build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// How many workers (including the calling thread's own stripe)
    /// panicked.
    pub panicked_workers: usize,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} parallel worker(s) panicked during a contained fan-out",
            self.panicked_workers
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Panic-containing variant of [`par_map_ordered`]: identical split, fan-out
/// and in-order fan-in, but a panic in `f` is caught instead of propagated.
///
/// On success the result is bit-identical to [`par_map_ordered`] (and hence
/// to the sequential loop). If **any** worker panics the whole fan-out is
/// discarded and `Err(`[`WorkerPanic`]`)` is returned — partial results are
/// never exposed, because a poisoned stripe leaves no way to tell which
/// indices were computed. All workers are always joined before returning, so
/// no detached thread outlives the call.
pub fn try_par_map_ordered<T, R, F>(
    threads: usize,
    items: &[T],
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    try_par_map_inner(threads, items, f, None)
}

/// [`try_par_map_ordered`] with observability: identical split, fan-out,
/// fan-in and panic containment (the result is bit-identical), plus each
/// worker stripe is counted into `par_tasks_executed`, timed into the
/// `worker_task` phase (busy-time histogram — utilization is busy time over
/// wall time) when the recorder has timing enabled, and any contained panic
/// increments `par_contained_panics`. With a detached recorder the only
/// extra work is two relaxed counter adds per call.
pub fn try_par_map_ordered_recorded<T, R, F>(
    recorder: &Recorder,
    threads: usize,
    items: &[T],
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let result = try_par_map_inner(threads, items, f, Some(recorder));
    if let Err(e) = &result {
        recorder.inc(Counter::ParContainedPanics, e.panicked_workers as u64);
    }
    result
}

fn try_par_map_inner<T, R, F>(
    threads: usize,
    items: &[T],
    f: F,
    recorder: Option<&Recorder>,
) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let ranges = split_ranges(items.len(), effective_threads(threads));
    if let Some(rec) = recorder {
        rec.inc(Counter::ParTasksExecuted, ranges.len().max(1) as u64);
    }
    // Captured on the consuming thread so worker-task spans on spawned
    // threads parent under the caller's open span, not float as roots.
    let parent = recorder.and_then(|rec| rec.current_ctx());
    // Times one stripe of work; a no-op guard when timing is off or no
    // recorder is attached (the off-the-data-path rule: observing a stripe
    // never changes what it computes).
    let run_stripe = |range: Range<usize>| -> Vec<R> {
        let _guard = recorder.map(|rec| rec.phase(Phase::WorkerTask));
        let mut span = recorder
            .map(|rec| rec.span_under("worker_task", parent))
            .unwrap_or_else(vas_obs::SpanGuard::noop);
        span.attr("stripe_start", range.start);
        span.attr("stripe_len", range.len());
        items[range.clone()]
            .iter()
            .zip(range)
            .map(|(t, i)| f(i, t))
            .collect()
    };
    if ranges.len() <= 1 {
        let only = ranges.first().cloned().unwrap_or(0..0);
        return catch_unwind(AssertUnwindSafe(|| run_stripe(only))).map_err(|_| WorkerPanic {
            panicked_workers: 1,
        });
    }
    let per_range: Vec<Result<Vec<R>, ()>> = std::thread::scope(|scope| {
        let run_stripe = &run_stripe;
        let handles: Vec<_> = ranges[1..]
            .iter()
            .map(|range| {
                let range = range.clone();
                scope.spawn(move || run_stripe(range))
            })
            .collect();
        let first =
            catch_unwind(AssertUnwindSafe(|| run_stripe(ranges[0].clone()))).map_err(|_| ());
        let mut out = Vec::with_capacity(ranges.len());
        out.push(first);
        // Join every handle unconditionally — a poisoned stripe must not
        // leave threads running (scope would re-panic on unjoined workers).
        for h in handles {
            out.push(h.join().map_err(|_| ()));
        }
        out
    });
    let panicked_workers = per_range.iter().filter(|r| r.is_err()).count();
    if panicked_workers > 0 {
        return Err(WorkerPanic { panicked_workers });
    }
    let mut result = Vec::with_capacity(items.len());
    for v in per_range {
        result.extend(v.expect("checked above"));
    }
    Ok(result)
}

/// Fans a slice out as fixed-size chunks (`items.chunks(chunk_size)`), maps
/// every chunk to an accumulator with `map`, and folds the accumulators
/// **left-to-right in chunk order** with `fold` — the "ordered-index
/// reduction" shape, used by the density-embedding pass
/// (`vas_core::density_counts_threaded`) and available to any map-reduce
/// over a slice. (Per-item fan-outs like the loss estimator's probe loop
/// use [`par_map_ordered`] directly.)
///
/// The chunk split is fixed by `(len, chunk_size)` and the reduction order is
/// fixed by chunk index, so the result is independent of the thread count:
/// `par_chunk_fold_ordered(1, ..)` and `par_chunk_fold_ordered(8, ..)` agree
/// bit-for-bit for deterministic `map`/`fold`. Returns `None` for an empty
/// input.
///
/// # Panics
/// Panics if `chunk_size` is zero.
pub fn par_chunk_fold_ordered<T, A, M, F>(
    threads: usize,
    items: &[T],
    chunk_size: usize,
    map: M,
    fold: F,
) -> Option<A>
where
    T: Sync,
    A: Send,
    M: Fn(usize, &[T]) -> A + Sync,
    F: FnMut(A, A) -> A,
{
    assert!(chunk_size > 0, "chunk size must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    let mapped = par_map_ordered(threads, &chunks, |i, chunk| map(i, chunk));
    mapped.into_iter().reduce(fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(3), 3);
        assert_eq!(effective_threads(1), 1);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn split_ranges_covers_exactly() {
        for (len, parts) in [(0usize, 4usize), (1, 4), (7, 3), (8, 3), (9, 3), (100, 1)] {
            let ranges = split_ranges(len, parts);
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "len {len} parts {parts}");
                assert!(!r.is_empty());
                next = r.end;
            }
            assert_eq!(next, len);
            assert!(ranges.len() <= parts.max(1));
            if len > 0 {
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced split: {sizes:?}");
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_map_at_any_thread_count() {
        let items: Vec<u64> = (0..1_000).collect();
        let reference: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v * 3 + i as u64)
            .collect();
        for threads in [1usize, 2, 3, 4, 7, 16] {
            let got = par_map_ordered(threads, &items, |i, v| v * 3 + i as u64);
            assert_eq!(got, reference, "threads {threads}");
        }
    }

    #[test]
    fn par_map_vec_preserves_order_and_ownership() {
        let items: Vec<String> = (0..57).map(|i| format!("item-{i}")).collect();
        let reference: Vec<String> = items.iter().map(|s| format!("{s}!")).collect();
        for threads in [1usize, 2, 5, 8] {
            let got = par_map_vec_ordered(threads, items.clone(), |_, s| format!("{s}!"));
            assert_eq!(got, reference, "threads {threads}");
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_ordered(4, &empty, |_, v| *v).is_empty());
        assert!(par_map_vec_ordered(4, empty.clone(), |_, v| v).is_empty());
        let folded = par_chunk_fold_ordered(4, &empty, 8, |_, c: &[u32]| c.len(), |a, b| a + b);
        assert_eq!(folded, None);
    }

    proptest::proptest! {
        #[test]
        fn ordered_chunk_fold_equals_sequential_fold_for_arbitrary_splits(
            values in proptest::collection::vec(-1.0e3f64..1.0e3, 1..400),
            chunk in 1usize..64,
            threads in 1usize..9,
        ) {
            // The floating-point sum is the canonical order-sensitive fold:
            // any reordering shows up as a bit difference. The parallel
            // chunked fold must therefore reproduce the *sequential chunked*
            // fold exactly — and because addition inside a chunk is the same
            // left-to-right loop, that in turn equals the plain sequential
            // sum bit-for-bit.
            let sequential: f64 = values.iter().sum();
            let map = |_: usize, c: &[f64]| c.iter().sum::<f64>();
            let seq_chunked = values
                .chunks(chunk)
                .enumerate()
                .map(|(i, c)| map(i, c))
                .reduce(|a, b| a + b)
                .unwrap();
            let par = par_chunk_fold_ordered(threads, &values, chunk, map, |a, b| a + b).unwrap();
            prop_assert_eq!(par.to_bits(), seq_chunked.to_bits());
            // The chunked fold re-associates the sum, so compare the
            // *structure*, not the raw sequential sum — but with one chunk
            // they must literally agree.
            if chunk >= values.len() {
                prop_assert_eq!(par.to_bits(), sequential.to_bits());
            }
        }

        #[test]
        fn ordered_fan_in_equals_sequential_map_for_arbitrary_splits(
            values in proptest::collection::vec(-1.0e6f64..1.0e6, 0..300),
            threads in 1usize..9,
        ) {
            let reference: Vec<f64> = values.iter().map(|v| v.sin() * 2.0).collect();
            let got = par_map_ordered(threads, &values, |_, v| v.sin() * 2.0);
            prop_assert_eq!(got.len(), reference.len());
            for (a, b) in got.iter().zip(&reference) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..100).collect();
        let _ = par_map_ordered(4, &items, |_, v| {
            assert!(*v != 57, "boom");
            *v
        });
    }

    #[test]
    fn try_par_map_matches_the_propagating_variant_on_success() {
        let items: Vec<u64> = (0..500).collect();
        for threads in [1usize, 2, 4, 7] {
            let reference = par_map_ordered(threads, &items, |i, v| v * 7 + i as u64);
            let got = try_par_map_ordered(threads, &items, |i, v| v * 7 + i as u64).unwrap();
            assert_eq!(got, reference, "threads {threads}");
        }
    }

    #[test]
    fn recorded_variants_match_and_count() {
        let rec = Recorder::detached().with_timing(true);
        let items: Vec<u64> = (0..200).collect();
        for threads in [1usize, 2, 4] {
            let reference = par_map_ordered(threads, &items, |i, v| v + i as u64);
            let got =
                try_par_map_ordered_recorded(&rec, threads, &items, |i, v| v + i as u64).unwrap();
            assert_eq!(got, reference, "threads {threads}");
            let got_vec =
                par_map_vec_ordered_recorded(&rec, threads, items.clone(), |i, v| v + i as u64);
            assert_eq!(got_vec, reference, "threads {threads}");
        }
        let snap = rec.registry().snapshot();
        assert!(snap.counter(Counter::ParTasksExecuted) >= 6);
        assert_eq!(snap.counter(Counter::ParContainedPanics), 0);
        assert!(snap.phase_calls(Phase::WorkerTask) >= 6);
    }

    #[test]
    fn worker_spans_parent_under_the_consumer_span() {
        use std::sync::Arc;
        let tracer = Arc::new(vas_obs::Tracer::new());
        let rec = Recorder::detached().with_tracer(Arc::clone(&tracer));
        let items: Vec<u64> = (0..64).collect();
        let consumer_id;
        {
            let consumer = rec.span("consumer_build");
            consumer_id = consumer.context().unwrap().span_id();
            let got = try_par_map_ordered_recorded(&rec, 4, &items, |i, v| v + i as u64).unwrap();
            assert_eq!(got.len(), items.len());
            let _ = par_map_vec_ordered_recorded(&rec, 4, items.clone(), |i, v| v + i as u64);
        }
        let spans = tracer.spans();
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker_task").collect();
        assert!(workers.len() >= 8, "4 stripes per combinator expected");
        for w in &workers {
            assert_eq!(
                w.parent,
                Some(consumer_id),
                "every worker span parents under the consumer span"
            );
            assert!(w.attrs.iter().any(|(k, _)| k == "stripe_len"));
        }
        // Stripes ran on more than one thread at 4 threads.
        let threads: std::collections::HashSet<u64> = workers.iter().map(|w| w.thread).collect();
        assert!(threads.len() > 1, "expected cross-thread worker spans");
    }

    #[test]
    fn recorded_variant_counts_contained_panics() {
        let rec = Recorder::detached();
        let items: Vec<u32> = (0..100).collect();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = try_par_map_ordered_recorded(&rec, 4, &items, |_, v| {
            assert!(*v != 57, "boom");
            *v
        })
        .unwrap_err();
        std::panic::set_hook(prev);
        assert_eq!(
            rec.registry().get(Counter::ParContainedPanics),
            err.panicked_workers as u64
        );
        // Timing off on the detached recorder: no worker-task latencies.
        assert_eq!(rec.registry().snapshot().phase_calls(Phase::WorkerTask), 0);
    }

    #[test]
    fn try_par_map_contains_worker_panics() {
        let items: Vec<u32> = (0..100).collect();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // Index 57 lands in a spawned worker's stripe at 4 threads and in
        // the calling thread's stripe at 1 thread — both must be contained.
        for threads in [1usize, 2, 4] {
            let err = try_par_map_ordered(threads, &items, |_, v| {
                assert!(*v != 57, "boom");
                *v
            })
            .unwrap_err();
            assert!(err.panicked_workers >= 1, "threads {threads}");
        }
        std::panic::set_hook(prev);
    }
}
