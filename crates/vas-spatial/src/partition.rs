//! Deterministic spatial shard partitioner derived from the [`HashGrid`]
//! cell decomposition.
//!
//! The sharded sampling subsystem (`vas-core::shard`) splits a point stream
//! into `S` sub-streams, runs one independent Interchange sampler per shard,
//! and merges the shard samples in ordered fan-in. The whole scheme is only
//! deterministic if the *assignment* step is: every point must land on the
//! same shard regardless of how the stream was chunked, which thread saw it,
//! or how many times the source was rescanned. [`ShardPartitioner`]
//! guarantees that by being a **pure per-point function** with no internal
//! state:
//!
//! 1. the point is snapped to a `HashGrid` cell (`floor(coord / cell_size)`,
//!    clamped to ±2³⁰ exactly like the grid itself), then
//! 2. the cell key is mixed through the grid's splitmix64 hash and reduced
//!    modulo the shard count.
//!
//! Mapping *cells*, not raw points, keeps each shard spatially coherent at
//! the cell granularity (neighbours within a kernel cutoff usually share a
//! cell), which is what makes the per-shard `LocalityIndex` effective; the
//! hash reduction spreads cells evenly so no shard starves.
//!
//! **Totality.** The assignment never fails or branches on data quality:
//! the `f64 → i32` cell-coordinate cast saturates, so `NaN` lands in cell
//! `0`, `±∞` and out-of-clamp coordinates land in the clamp-border cells,
//! and `-0.0` hashes identically to `+0.0`. Garbage input degrades shard
//! *balance*, never determinism.

use crate::HashGrid;
use vas_data::Point;

/// A stateless, deterministic `Point → shard` assignment over the
/// [`HashGrid`] cell decomposition.
///
/// Two partitioners constructed with the same `(shards, cell_size)` are
/// interchangeable: the assignment depends only on those parameters and the
/// point's coordinates, never on observation order, chunking, or thread
/// count. See the [module docs](self) for the contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPartitioner {
    shards: usize,
    cell_size: f64,
    inv_cell_size: f64,
}

impl ShardPartitioner {
    /// Creates a partitioner mapping points into `shards` shards over cells
    /// of `cell_size` (typically the kernel's effective radius, matching the
    /// per-shard `HashGrid` geometry). A non-finite or non-positive
    /// `cell_size` is replaced by the grid's default, exactly as
    /// [`HashGrid::with_cell_size`] would.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn new(shards: usize, cell_size: f64) -> Self {
        assert!(shards > 0, "shard count must be at least 1");
        let cell_size = HashGrid::sanitize_cell_size(cell_size);
        Self {
            shards,
            cell_size,
            inv_cell_size: 1.0 / cell_size,
        }
    }

    /// Number of shards points are assigned into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The (sanitized) cell size of the underlying decomposition.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The grid cell `point` falls into — identical to the cell a
    /// [`HashGrid`] with the same cell size would use.
    pub fn cell_of(&self, point: &Point) -> (i32, i32) {
        (
            HashGrid::coord(point.x * self.inv_cell_size),
            HashGrid::coord(point.y * self.inv_cell_size),
        )
    }

    /// The shard `point` is assigned to, in `0..shards()`. Total: every
    /// representable point (including `NaN`/`±∞` coordinates) gets a shard.
    pub fn shard_of(&self, point: &Point) -> usize {
        HashGrid::hash_key(self.cell_of(point)) % self.shards
    }

    /// Appends each point of `chunk` to `parts[shard_of(point)]`, preserving
    /// stream order within every shard. `parts` must hold exactly
    /// [`shards()`](Self::shards) buckets; existing contents are kept, so a
    /// caller can scatter a whole stream chunk by chunk.
    pub fn scatter_chunk(&self, chunk: &[Point], parts: &mut [Vec<Point>]) {
        assert_eq!(
            parts.len(),
            self.shards,
            "scatter_chunk needs one bucket per shard"
        );
        for p in chunk {
            parts[self.shard_of(p)].push(*p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..40 {
            for j in 0..40 {
                pts.push(Point::with_value(
                    i as f64 * 0.73 - 10.0,
                    j as f64 * 0.51 - 7.0,
                    (i * 40 + j) as f64,
                ));
            }
        }
        pts
    }

    #[test]
    fn zero_shards_is_rejected() {
        let result = std::panic::catch_unwind(|| ShardPartitioner::new(0, 1.0));
        assert!(result.is_err(), "shards == 0 must panic");
    }

    #[test]
    fn assignment_is_total_and_in_range() {
        let part = ShardPartitioner::new(4, 0.9);
        let specials = [
            Point::new(f64::NAN, f64::NAN),
            Point::new(f64::NAN, 3.0),
            Point::new(f64::INFINITY, f64::NEG_INFINITY),
            Point::new(-0.0, -0.0),
            Point::new(0.0, 0.0),
            Point::new(1e300, -1e300),
            Point::new(f64::MAX, f64::MIN),
        ];
        for p in specials.iter().chain(grid_points().iter()) {
            assert!(part.shard_of(p) < 4, "shard out of range for {p:?}");
        }
    }

    #[test]
    fn negative_zero_matches_positive_zero() {
        let part = ShardPartitioner::new(7, 0.3);
        assert_eq!(part.cell_of(&Point::new(-0.0, -0.0)), (0, 0));
        assert_eq!(
            part.shard_of(&Point::new(-0.0, 0.0)),
            part.shard_of(&Point::new(0.0, -0.0)),
        );
    }

    #[test]
    fn out_of_clamp_coordinates_land_in_border_cells() {
        let part = ShardPartitioner::new(3, 1.0);
        let limit = 1i32 << 30;
        assert_eq!(part.cell_of(&Point::new(1e300, -1e300)), (limit, -limit));
        assert_eq!(
            part.cell_of(&Point::new(f64::INFINITY, f64::NEG_INFINITY)),
            (limit, -limit)
        );
        // NaN saturates to 0 — the same cell as the origin.
        assert_eq!(part.cell_of(&Point::new(f64::NAN, f64::NAN)), (0, 0));
        // Border cells are still valid shard inputs.
        assert!(part.shard_of(&Point::new(1e300, 1e300)) < 3);
    }

    #[test]
    fn all_points_in_one_cell_map_to_one_shard() {
        // cell_size 100 ⇒ every point below fits in cell (0, 0): one shard
        // receives everything, the others are legitimately empty.
        let part = ShardPartitioner::new(4, 100.0);
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new(i as f64 * 0.1, i as f64 * 0.2))
            .collect();
        let first = part.shard_of(&pts[0]);
        for p in &pts {
            assert_eq!(part.cell_of(p), (0, 0));
            assert_eq!(part.shard_of(p), first);
        }
    }

    #[test]
    fn empty_shards_are_allowed() {
        // More shards than occupied cells forces some shards empty; the
        // scatter must still produce a bucket per shard and lose nothing.
        let part = ShardPartitioner::new(16, 1.0);
        let pts = [Point::new(0.5, 0.5), Point::new(0.6, 0.4)];
        let mut parts: Vec<Vec<Point>> = (0..16).map(|_| Vec::new()).collect();
        part.scatter_chunk(&pts, &mut parts);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, pts.len());
        assert!(parts.iter().filter(|b| b.is_empty()).count() >= 14);
    }

    #[test]
    fn assignment_is_stable_across_calls_chunkings_and_instances() {
        let part = ShardPartitioner::new(4, 0.8);
        let pts = grid_points();
        let reference: Vec<usize> = pts.iter().map(|p| part.shard_of(p)).collect();

        // Rescan (same instance, e.g. after a source `reset`).
        let rescan: Vec<usize> = pts.iter().map(|p| part.shard_of(p)).collect();
        assert_eq!(reference, rescan, "rescan must not move any point");

        // A fresh instance with the same parameters agrees.
        let twin = ShardPartitioner::new(4, 0.8);
        let from_twin: Vec<usize> = pts.iter().map(|p| twin.shard_of(p)).collect();
        assert_eq!(reference, from_twin, "assignment must be instance-free");

        // Chunking must not matter: scatter in chunks of 1, 7, and all-at-
        // once and compare the resulting buckets.
        let mut whole: Vec<Vec<Point>> = (0..4).map(|_| Vec::new()).collect();
        part.scatter_chunk(&pts, &mut whole);
        for chunk_len in [1usize, 7] {
            let mut chunked: Vec<Vec<Point>> = (0..4).map(|_| Vec::new()).collect();
            for chunk in pts.chunks(chunk_len) {
                part.scatter_chunk(chunk, &mut chunked);
            }
            assert_eq!(whole, chunked, "chunk size {chunk_len} changed a shard");
        }
    }

    #[test]
    fn matches_hashgrid_cell_geometry() {
        // The partitioner must agree with the grid it is derived from, so a
        // shard's points stay cell-coherent in that shard's own HashGrid.
        let part = ShardPartitioner::new(2, 0.37);
        let mut grid = HashGrid::with_cell_size(0.37);
        for (i, p) in grid_points().iter().enumerate() {
            crate::LocalityIndex::insert(&mut grid, i, *p);
            assert_eq!(part.cell_of(p), grid.cell_of(p));
        }
    }

    #[test]
    fn sanitizes_degenerate_cell_sizes() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let part = ShardPartitioner::new(2, bad);
            assert!(part.cell_size().is_finite() && part.cell_size() > 0.0);
            assert!(part.shard_of(&Point::new(1.0, 2.0)) < 2);
        }
    }
}
