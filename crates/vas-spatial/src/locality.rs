//! The [`LocalityIndex`] trait: a pluggable fixed-radius neighbourhood
//! backend.
//!
//! The `ES+Loc` variant of the Interchange algorithm (paper Section IV-B)
//! only ever asks one spatial question: *"which sample points lie within the
//! kernel's effective radius of this location?"* — millions of times, against
//! an index that churns under constant insert/remove replacement traffic.
//! This module captures that access pattern as a trait so the Interchange
//! loop (and the loss estimator in `vas-eval`) can be compiled against any
//! backend:
//!
//! * [`RTree`] — the paper's original choice; good all-rounder, also serves
//!   region and nearest-neighbour queries.
//! * [`KdTree`] — balanced median-split tree with a small dynamic overlay
//!   (tombstones + an insertion buffer, compacted periodically).
//! * [`HashGrid`] — a dynamic spatial hash over cutoff-sized cells; the
//!   fastest backend for the fixed-radius query the Interchange loop performs
//!   (see `results/BENCH_interchange.json`).
//!
//! Every backend must produce a **deterministic visitation order** for a
//! given operation history: the Interchange determinism contract
//! (`tests/determinism.rs`) compares optimized and legacy inner loops
//! bit-for-bit, which only holds when both observe neighbours in the same
//! order.
//!
//! The visitor methods take `impl FnMut`, so the trait is not object-safe;
//! runtime backend selection goes through the [`AnyLocalityIndex`] enum
//! instead of trait objects (the dispatch cost is one `match` per query call,
//! not per visited entry).

use crate::{snapshot, GridOccupancy, HashGrid, KdTree, RTree};
use vas_data::Point;

/// Reusable struct-of-arrays scratch for batch-gather neighbourhood queries
/// ([`LocalityIndex::gather_in_radius_into`]).
///
/// Ids and squared distances live in two parallel flat arrays (`ids[i]`
/// belongs to `dist2[i]`), so a consumer can hand the `dist2` lanes straight
/// to a vectorizable kernel loop (`Kernel::eval_dist2_batch` in `vas-core`)
/// instead of evaluating point-at-a-time inside a visitor callback. The lane
/// order is exactly the backend's deterministic visitation order, which is
/// what keeps the batched Interchange path bit-identical to the scalar one.
///
/// Both vectors keep their capacity across [`clear`](Self::clear), so a
/// reused batch makes the gather allocation-free in the steady state.
#[derive(Debug, Clone, Default)]
pub struct NeighborBatch {
    /// Entry ids, in visitation order.
    pub ids: Vec<usize>,
    /// Squared distance of each entry to the query center, lane-parallel to
    /// [`ids`](Self::ids).
    pub dist2: Vec<f64>,
}

impl NeighborBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes all lanes, keeping both buffers' capacity.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.dist2.clear();
    }

    /// Number of gathered lanes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no lanes are gathered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// A dynamic index over `(id, Point)` entries answering fixed-radius
/// neighbourhood queries.
///
/// Duplicate ids and duplicate points are permitted (the index is a
/// multiset); [`remove`](Self::remove) deletes one matching entry.
///
/// `Send + Sync` are supertraits: the parallel execution subsystem shares a
/// frozen index snapshot across scoped worker threads (the Interchange
/// speculative pre-evaluation front, the loss estimator's probe fan-out), so
/// a backend must be safe to reference concurrently while no `&mut` method
/// runs. Every backend here is plain owned data with no interior
/// mutability, so the bounds are automatic.
pub trait LocalityIndex: Send + Sync {
    /// Number of stored entries.
    fn len(&self) -> usize;

    /// `true` when the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every entry and re-tunes internal geometry to `radius_hint`,
    /// the radius that future [`for_each_in_radius`](Self::for_each_in_radius)
    /// calls will typically use (the [`HashGrid`] sizes its cells from it;
    /// tree backends ignore it). A non-finite or non-positive hint is
    /// replaced by a backend default.
    fn reset(&mut self, radius_hint: f64);

    /// Inserts an entry.
    fn insert(&mut self, id: usize, point: Point);

    /// Removes one entry matching `(id, point)` exactly. Returns `true` if an
    /// entry was removed.
    fn remove(&mut self, id: usize, point: &Point) -> bool;

    /// Calls `visit(id, point, dist2)` for every entry within Euclidean
    /// distance `radius` of `center`, without allocating, handing the visitor
    /// the squared distance the traversal already computed for its filter.
    ///
    /// The visitation order is implementation-defined but deterministic for a
    /// given operation history.
    fn for_each_in_radius_with_dist2(
        &self,
        center: &Point,
        radius: f64,
        visit: impl FnMut(usize, &Point, f64),
    );

    /// Writes every entry within Euclidean distance `radius` of `center`
    /// into `out` as struct-of-arrays lanes (`(id, dist2)` pairs split across
    /// two flat buffers), clearing `out` first.
    ///
    /// The lane order is **exactly** the visitation order of
    /// [`for_each_in_radius_with_dist2`](Self::for_each_in_radius_with_dist2)
    /// — gather-then-batch-evaluate consumers rely on that to reproduce the
    /// scalar visitor path bit-for-bit. Backends may specialize this for a
    /// tighter fill loop (the [`HashGrid`] fills lanes cell-by-cell), but
    /// must preserve the order.
    fn gather_in_radius_into(&self, center: &Point, radius: f64, out: &mut NeighborBatch) {
        out.clear();
        self.for_each_in_radius_with_dist2(center, radius, |id, _, d2| {
            out.ids.push(id);
            out.dist2.push(d2);
        });
    }

    /// Clears the index (see [`reset`](Self::reset)) and bulk-loads
    /// `entries`.
    fn rebuild(&mut self, radius_hint: f64, entries: &[(usize, Point)]) {
        self.reset(radius_hint);
        for &(id, p) in entries {
            self.insert(id, p);
        }
    }

    /// Calls `visit(id, point)` for every entry within Euclidean distance
    /// `radius` of `center`, in the order of
    /// [`for_each_in_radius_with_dist2`](Self::for_each_in_radius_with_dist2),
    /// without allocating.
    fn for_each_in_radius(
        &self,
        center: &Point,
        radius: f64,
        mut visit: impl FnMut(usize, &Point),
    ) {
        self.for_each_in_radius_with_dist2(center, radius, |id, p, _| visit(id, p));
    }

    /// Writes all entries within `radius` of `center` into `out`, clearing it
    /// first. The buffer's capacity is retained across calls, so a reused
    /// buffer makes the query allocation-free in the steady state.
    fn query_radius_into(&self, center: &Point, radius: f64, out: &mut Vec<(usize, Point)>) {
        out.clear();
        self.for_each_in_radius(center, radius, |id, p| out.push((id, *p)));
    }

    /// All entries within Euclidean distance `radius` of `center`. Thin
    /// allocating wrapper over [`query_radius_into`](Self::query_radius_into);
    /// hot paths should use the buffer or visitor form.
    fn query_radius(&self, center: &Point, radius: f64) -> Vec<(usize, Point)> {
        let mut out = Vec::new();
        self.query_radius_into(center, radius, &mut out);
        out
    }

    /// Occupancy statistics of the backend's cell decomposition, when it has
    /// one (the [`HashGrid`] does; the tree backends return `None`).
    ///
    /// This is the measurement signal behind the density-adaptive
    /// cell-sizing decision: it reports how full the decomposition actually
    /// is without changing sizing behaviour. The scan is `O(table)`, so
    /// instrumented callers should only take it at phase boundaries, never
    /// inside the query loop.
    fn occupancy_stats(&self) -> Option<GridOccupancy> {
        None
    }
}

/// Which [`LocalityIndex`] implementation a runtime-configured consumer (the
/// Interchange sampler, the benchmark harness) should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LocalityBackend {
    /// Guttman R-tree ([`RTree`]): the paper's original ES+Loc index.
    RTree,
    /// Median-split k-d tree with a dynamic overlay ([`KdTree`]).
    KdTree,
    /// Dynamic spatial hash over cutoff-sized cells ([`HashGrid`]) — the
    /// default, fastest on the Interchange fixed-radius workload.
    #[default]
    HashGrid,
}

impl LocalityBackend {
    /// Every selectable backend, in benchmark-sweep order.
    pub const ALL: [LocalityBackend; 3] = [
        LocalityBackend::RTree,
        LocalityBackend::KdTree,
        LocalityBackend::HashGrid,
    ];

    /// Stable lower-case label used in CLI flags and benchmark reports.
    pub fn label(&self) -> &'static str {
        match self {
            LocalityBackend::RTree => "rtree",
            LocalityBackend::KdTree => "kdtree",
            LocalityBackend::HashGrid => "hashgrid",
        }
    }
}

impl std::fmt::Display for LocalityBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for LocalityBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "rtree" | "r-tree" => Ok(LocalityBackend::RTree),
            "kdtree" | "kd-tree" => Ok(LocalityBackend::KdTree),
            "hashgrid" | "hash-grid" | "grid" => Ok(LocalityBackend::HashGrid),
            other => Err(format!(
                "unknown locality backend {other:?} (expected rtree, kdtree or hashgrid)"
            )),
        }
    }
}

/// Runtime-selected [`LocalityIndex`]: one `match` per query call dispatches
/// to the concrete backend, after which the inner loop is monomorphic.
#[derive(Debug, Clone)]
pub enum AnyLocalityIndex {
    /// R-tree backend.
    RTree(RTree),
    /// k-d tree backend.
    KdTree(KdTree),
    /// Spatial-hash backend.
    HashGrid(HashGrid),
}

impl AnyLocalityIndex {
    /// Creates an empty index of the chosen backend.
    pub fn new(backend: LocalityBackend) -> Self {
        match backend {
            LocalityBackend::RTree => AnyLocalityIndex::RTree(RTree::new()),
            LocalityBackend::KdTree => AnyLocalityIndex::KdTree(KdTree::new()),
            LocalityBackend::HashGrid => AnyLocalityIndex::HashGrid(HashGrid::new()),
        }
    }

    /// The backend this index dispatches to.
    pub fn backend(&self) -> LocalityBackend {
        match self {
            AnyLocalityIndex::RTree(_) => LocalityBackend::RTree,
            AnyLocalityIndex::KdTree(_) => LocalityBackend::KdTree,
            AnyLocalityIndex::HashGrid(_) => LocalityBackend::HashGrid,
        }
    }

    /// Appends a byte-exact snapshot of this index — a backend tag followed
    /// by the backend's own encoding (see [`crate::snapshot`]). A restored
    /// index reproduces the original's future behaviour bit for bit:
    /// visitation orders, insert/remove outcomes, everything the sampler's
    /// per-backend determinism contract observes.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        match self {
            AnyLocalityIndex::RTree(t) => {
                snapshot::put_u8(out, 0);
                t.snapshot_into(out);
            }
            AnyLocalityIndex::KdTree(t) => {
                snapshot::put_u8(out, 1);
                t.snapshot_into(out);
            }
            AnyLocalityIndex::HashGrid(g) => {
                snapshot::put_u8(out, 2);
                g.snapshot_into(out);
            }
        }
    }

    /// The snapshot as an owned buffer ([`snapshot_into`](Self::snapshot_into)).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out);
        out
    }

    /// Restores an index from a reader positioned at a
    /// [`snapshot_into`](Self::snapshot_into) encoding.
    pub fn restore_snapshot(
        r: &mut snapshot::SnapshotReader<'_>,
    ) -> Result<Self, snapshot::SnapshotError> {
        match r.take_u8("locality backend tag")? {
            0 => Ok(AnyLocalityIndex::RTree(RTree::restore_snapshot(r)?)),
            1 => Ok(AnyLocalityIndex::KdTree(KdTree::restore_snapshot(r)?)),
            2 => Ok(AnyLocalityIndex::HashGrid(HashGrid::restore_snapshot(r)?)),
            other => Err(snapshot::SnapshotError::new(format!(
                "unknown locality backend tag {other}"
            ))),
        }
    }

    /// Restores an index from a buffer that must contain exactly one
    /// snapshot — trailing bytes are rejected.
    pub fn restore(bytes: &[u8]) -> Result<Self, snapshot::SnapshotError> {
        let mut r = snapshot::SnapshotReader::new(bytes);
        let index = Self::restore_snapshot(&mut r)?;
        r.expect_end()?;
        Ok(index)
    }
}

impl Default for AnyLocalityIndex {
    fn default() -> Self {
        Self::new(LocalityBackend::default())
    }
}

impl LocalityIndex for AnyLocalityIndex {
    fn len(&self) -> usize {
        match self {
            AnyLocalityIndex::RTree(t) => LocalityIndex::len(t),
            AnyLocalityIndex::KdTree(t) => LocalityIndex::len(t),
            AnyLocalityIndex::HashGrid(g) => LocalityIndex::len(g),
        }
    }

    fn reset(&mut self, radius_hint: f64) {
        match self {
            AnyLocalityIndex::RTree(t) => t.reset(radius_hint),
            AnyLocalityIndex::KdTree(t) => t.reset(radius_hint),
            AnyLocalityIndex::HashGrid(g) => g.reset(radius_hint),
        }
    }

    fn insert(&mut self, id: usize, point: Point) {
        match self {
            AnyLocalityIndex::RTree(t) => LocalityIndex::insert(t, id, point),
            AnyLocalityIndex::KdTree(t) => LocalityIndex::insert(t, id, point),
            AnyLocalityIndex::HashGrid(g) => LocalityIndex::insert(g, id, point),
        }
    }

    fn remove(&mut self, id: usize, point: &Point) -> bool {
        match self {
            AnyLocalityIndex::RTree(t) => LocalityIndex::remove(t, id, point),
            AnyLocalityIndex::KdTree(t) => LocalityIndex::remove(t, id, point),
            AnyLocalityIndex::HashGrid(g) => LocalityIndex::remove(g, id, point),
        }
    }

    fn for_each_in_radius_with_dist2(
        &self,
        center: &Point,
        radius: f64,
        visit: impl FnMut(usize, &Point, f64),
    ) {
        match self {
            AnyLocalityIndex::RTree(t) => t.for_each_in_radius_with_dist2(center, radius, visit),
            AnyLocalityIndex::KdTree(t) => t.for_each_in_radius_with_dist2(center, radius, visit),
            AnyLocalityIndex::HashGrid(g) => g.for_each_in_radius_with_dist2(center, radius, visit),
        }
    }

    fn gather_in_radius_into(&self, center: &Point, radius: f64, out: &mut NeighborBatch) {
        match self {
            AnyLocalityIndex::RTree(t) => t.gather_in_radius_into(center, radius, out),
            AnyLocalityIndex::KdTree(t) => t.gather_in_radius_into(center, radius, out),
            AnyLocalityIndex::HashGrid(g) => g.gather_in_radius_into(center, radius, out),
        }
    }

    fn occupancy_stats(&self) -> Option<GridOccupancy> {
        match self {
            AnyLocalityIndex::RTree(t) => LocalityIndex::occupancy_stats(t),
            AnyLocalityIndex::KdTree(t) => LocalityIndex::occupancy_stats(t),
            AnyLocalityIndex::HashGrid(g) => LocalityIndex::occupancy_stats(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)))
            .collect()
    }

    /// Compile-time audit: every backend (and the runtime-dispatch enum)
    /// must be shareable across the scoped worker threads of the parallel
    /// subsystem. A backend gaining an `Rc`/`RefCell` field would turn this
    /// into a compile error rather than a distant trait-bound failure.
    #[test]
    fn every_backend_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::RTree>();
        assert_send_sync::<crate::KdTree>();
        assert_send_sync::<crate::HashGrid>();
        assert_send_sync::<AnyLocalityIndex>();
    }

    #[test]
    fn backend_labels_round_trip() {
        for backend in LocalityBackend::ALL {
            let parsed: LocalityBackend = backend.label().parse().unwrap();
            assert_eq!(parsed, backend);
            assert_eq!(backend.to_string(), backend.label());
        }
        assert!("voronoi".parse::<LocalityBackend>().is_err());
        assert_eq!(LocalityBackend::default(), LocalityBackend::HashGrid);
    }

    #[test]
    fn every_backend_answers_radius_queries_identically_as_a_set() {
        let pts = random_points(400, 9);
        let center = Point::new(3.0, -7.0);
        let radius = 12.0;
        let mut expected: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(&center) <= radius)
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        assert!(!expected.is_empty());
        for backend in LocalityBackend::ALL {
            let mut index = AnyLocalityIndex::new(backend);
            assert_eq!(index.backend(), backend);
            index.rebuild(radius, &pts.iter().copied().enumerate().collect::<Vec<_>>());
            assert_eq!(index.len(), pts.len());
            let mut got: Vec<usize> = index
                .query_radius(&center, radius)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            got.sort_unstable();
            assert_eq!(got, expected, "backend {backend}");
        }
    }

    #[test]
    fn every_backend_supports_churn_and_reset() {
        let pts = random_points(200, 11);
        for backend in LocalityBackend::ALL {
            let mut index = AnyLocalityIndex::new(backend);
            for (i, p) in pts.iter().enumerate() {
                index.insert(i, *p);
            }
            // Remove half the entries.
            for (i, p) in pts.iter().enumerate() {
                if i % 2 == 0 {
                    assert!(index.remove(i, p), "backend {backend}: remove {i}");
                }
            }
            assert_eq!(index.len(), pts.len() / 2, "backend {backend}");
            // Removed entries are gone, kept entries still found.
            let found: Vec<usize> = index
                .query_radius(&Point::new(0.0, 0.0), 1_000.0)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            assert!(found.iter().all(|id| id % 2 == 1), "backend {backend}");
            assert_eq!(found.len(), pts.len() / 2, "backend {backend}");
            // Reset empties the index and it stays usable.
            index.reset(5.0);
            assert!(index.is_empty(), "backend {backend}");
            index.insert(7, Point::new(1.0, 1.0));
            assert_eq!(index.len(), 1, "backend {backend}");
        }
    }

    #[test]
    fn visitor_buffer_and_allocating_queries_agree_per_backend() {
        let pts = random_points(300, 13);
        let center = Point::new(-4.0, 4.0);
        for backend in LocalityBackend::ALL {
            let mut index = AnyLocalityIndex::new(backend);
            index.rebuild(8.0, &pts.iter().copied().enumerate().collect::<Vec<_>>());
            let allocated = index.query_radius(&center, 8.0);
            let mut buf = Vec::new();
            index.query_radius_into(&center, 8.0, &mut buf);
            assert_eq!(buf, allocated, "backend {backend}");
            let mut visited = Vec::new();
            index.for_each_in_radius(&center, 8.0, |id, p| visited.push((id, *p)));
            assert_eq!(visited, allocated, "backend {backend}");
            let mut with_d2 = Vec::new();
            index.for_each_in_radius_with_dist2(&center, 8.0, |id, p, d2| {
                assert!((d2 - p.dist2(&center)).abs() < 1e-12);
                with_d2.push((id, *p));
            });
            assert_eq!(with_d2, allocated, "backend {backend}");
        }
    }

    /// Full observable state of a radius query: ids, point bits and distance
    /// bits, **in visitation order**.
    fn query_trace(
        index: &AnyLocalityIndex,
        center: &Point,
        radius: f64,
    ) -> Vec<(usize, [u64; 4])> {
        let mut out = Vec::new();
        index.for_each_in_radius_with_dist2(center, radius, |id, p, d2| {
            out.push((
                id,
                [
                    p.x.to_bits(),
                    p.y.to_bits(),
                    p.value.to_bits(),
                    d2.to_bits(),
                ],
            ));
        });
        out
    }

    /// The property the sampler's checkpoint/resume path is built on: a
    /// restored index is not merely set-equal to the original — it must
    /// reproduce the original's **future behaviour** exactly, because the
    /// per-backend determinism contract pins visitation order, and order is
    /// history-dependent state. So after snapshot/restore, both copies are
    /// driven through an identical gauntlet of interleaved churn and
    /// queries, and every visitation sequence must match bit for bit.
    #[test]
    fn snapshot_restore_reproduces_future_behaviour_per_backend() {
        let radius = 7.0;
        let centers = [
            Point::new(0.0, 0.0),
            Point::new(13.0, -22.0),
            Point::new(-40.0, 40.0),
        ];
        for backend in LocalityBackend::ALL {
            let pts = random_points(500, 17);
            let mut original = AnyLocalityIndex::new(backend);
            original.reset(radius);
            // History with churn: bulk insert, then remove a third — the
            // removals leave tombstones / drained cells / underflow repairs
            // behind, which is exactly the state a naive rebuild would lose.
            for (i, p) in pts.iter().enumerate() {
                original.insert(i, *p);
            }
            for (i, p) in pts.iter().enumerate() {
                if i % 3 == 0 {
                    assert!(original.remove(i, p), "backend {backend}: remove {i}");
                }
            }

            let bytes = original.snapshot();
            let mut restored = AnyLocalityIndex::restore(&bytes).expect("restore");
            assert_eq!(restored.backend(), backend);
            assert_eq!(restored.len(), original.len(), "backend {backend}");

            // Identical futures: alternate churn and queries on both copies.
            let future = random_points(300, 23);
            for (step, p) in future.iter().enumerate() {
                let id = 1_000 + step;
                original.insert(id, *p);
                restored.insert(id, *p);
                if step % 5 == 0 {
                    let victim = step % pts.len();
                    let a = original.remove(victim, &pts[victim]);
                    let b = restored.remove(victim, &pts[victim]);
                    assert_eq!(a, b, "backend {backend}: remove outcome at step {step}");
                }
                if step % 7 == 0 {
                    for center in &centers {
                        assert_eq!(
                            query_trace(&original, center, radius),
                            query_trace(&restored, center, radius),
                            "backend {backend}: query trace diverged at step {step}"
                        );
                    }
                }
            }
            assert_eq!(restored.len(), original.len(), "backend {backend}");
            for center in &centers {
                for r in [0.5, radius, 60.0] {
                    assert_eq!(
                        query_trace(&original, center, r),
                        query_trace(&restored, center, r),
                        "backend {backend}: final trace, radius {r}"
                    );
                }
            }
        }
    }

    /// `-0.0`, subnormal coordinates and NaN values must survive the
    /// snapshot byte-exactly (the sampler compares sample bits).
    #[test]
    fn snapshot_preserves_special_float_bits_per_backend() {
        let specials = [
            Point::with_value(-0.0, 5e-324, f64::NAN),
            Point::with_value(f64::MIN_POSITIVE, -f64::MIN_POSITIVE, -0.0),
            Point::with_value(1e-308, -1e-308, f64::INFINITY),
        ];
        for backend in LocalityBackend::ALL {
            let mut index = AnyLocalityIndex::new(backend);
            index.reset(1.0);
            for (i, p) in specials.iter().enumerate() {
                index.insert(i, *p);
            }
            let restored = AnyLocalityIndex::restore(&index.snapshot()).expect("restore");
            let trace = query_trace(&restored, &Point::new(0.0, 0.0), 1.0);
            assert_eq!(
                trace,
                query_trace(&index, &Point::new(0.0, 0.0), 1.0),
                "backend {backend}"
            );
            assert!(!trace.is_empty(), "backend {backend}");
        }
    }

    #[test]
    fn snapshot_decode_rejects_malformed_bytes() {
        let mut index = AnyLocalityIndex::new(LocalityBackend::HashGrid);
        index.reset(2.0);
        for (i, p) in random_points(50, 31).iter().enumerate() {
            index.insert(i, *p);
        }
        let bytes = index.snapshot();

        // Truncation anywhere strictly inside the buffer fails.
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                AnyLocalityIndex::restore(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
        // Unknown backend tag.
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert!(AnyLocalityIndex::restore(&bad).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        let err = AnyLocalityIndex::restore(&long).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        // The pristine buffer still restores.
        assert!(AnyLocalityIndex::restore(&bytes).is_ok());
    }

    #[test]
    fn batch_gather_matches_the_visitor_lane_for_lane_per_backend() {
        // The contract the batched kernel path is built on: the SoA gather
        // must reproduce the visitor's (id, dist2) sequence bit-for-bit, in
        // the same order, on every backend — including after churn, and when
        // the reused batch previously held a larger result.
        let pts = random_points(400, 29);
        for backend in LocalityBackend::ALL {
            let mut index = AnyLocalityIndex::new(backend);
            index.rebuild(9.0, &pts.iter().copied().enumerate().collect::<Vec<_>>());
            for (i, p) in pts.iter().enumerate().take(150) {
                if i % 4 == 0 {
                    assert!(index.remove(i, p), "backend {backend}");
                }
            }
            let mut batch = NeighborBatch::new();
            for (radius, center) in [
                (9.0, Point::new(2.0, -3.0)),
                (25.0, Point::new(-10.0, 10.0)),
                (0.5, Point::new(0.0, 0.0)),
            ] {
                let mut visited: Vec<(usize, u64)> = Vec::new();
                index.for_each_in_radius_with_dist2(&center, radius, |id, _, d2| {
                    visited.push((id, d2.to_bits()));
                });
                index.gather_in_radius_into(&center, radius, &mut batch);
                assert_eq!(batch.len(), visited.len(), "backend {backend}");
                assert_eq!(batch.is_empty(), visited.is_empty(), "backend {backend}");
                let gathered: Vec<(usize, u64)> = batch
                    .ids
                    .iter()
                    .zip(&batch.dist2)
                    .map(|(&id, d2)| (id, d2.to_bits()))
                    .collect();
                assert_eq!(gathered, visited, "backend {backend}, radius {radius}");
            }
        }
    }
}
