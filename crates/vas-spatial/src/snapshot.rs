//! Byte-exact snapshots of the locality backends, for checkpoint/resume.
//!
//! The sampler's determinism contract is pinned **per backend**: every
//! backend produces a deterministic — but history-dependent — visitation
//! order, so a checkpoint cannot simply store the live entries and rebuild
//! the index from scratch; the rebuilt structure would visit neighbours in a
//! different (equally valid) order and the resumed run would diverge bit by
//! bit from an uninterrupted one. Instead each backend serializes exactly the
//! state its future behaviour depends on:
//!
//! * [`RTree`](crate::RTree) — the full node tree, **including the stored
//!   bounding boxes verbatim**. Boxes are maintained incrementally by
//!   `extend` during inserts and drive future child choice via enlargement;
//!   recomputing them on restore could flip a tie and change the shape of
//!   future splits.
//! * [`KdTree`](crate::KdTree) — the entries array, tombstone flags and
//!   overflow buffer verbatim; the node structure is a pure deterministic
//!   function of the entries array (stable median build) and is rebuilt.
//! * [`HashGrid`](crate::HashGrid) — the cell size bits plus every entry in
//!   cell-grouped scan order; replaying the inserts reproduces each cell's
//!   item vector exactly, and the geometric query path orders cells
//!   row-major independent of table layout.
//!
//! All multi-byte values are little-endian; `f64`s travel as raw bits, so
//! `-0.0`, subnormals and NaN payloads survive unchanged. The encoding has
//! no checksum of its own — it is designed to be embedded in a container
//! (the `.vascheckpt` file) that checksums the whole payload.

use std::fmt;

/// A snapshot decode failure: truncated bytes, an unknown tag, or an
/// internal-consistency violation (counts that do not add up).
#[derive(Debug)]
pub struct SnapshotError {
    /// What failed to decode.
    pub detail: String,
}

impl SnapshotError {
    pub(crate) fn new(detail: impl Into<String>) -> Self {
        Self {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "locality snapshot: {}", self.detail)
    }
}

impl std::error::Error for SnapshotError {}

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as a little-endian `u64`.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Appends an `f64` as its raw little-endian bits.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A cursor over snapshot bytes with typed, bounds-checked reads.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Wraps `bytes` with the cursor at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::new(format!(
                "truncated: needed {n} bytes for {what} at offset {}, had {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn take_u8(&mut self, what: &str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that do
    /// not fit.
    pub fn take_usize(&mut self, what: &str) -> Result<usize, SnapshotError> {
        let v = self.take_u64(what)?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::new(format!("{what} {v} does not fit in usize")))
    }

    /// Reads an `f64` from its raw little-endian bits.
    pub fn take_f64(&mut self, what: &str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    /// Fails unless every byte has been consumed — catches trailing garbage
    /// when a snapshot is expected to span the whole buffer.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::new(format!(
                "{} trailing bytes after snapshot",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_usize(&mut buf, 123_456);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, 5e-324);
        put_f64(&mut buf, f64::NAN);

        let mut r = SnapshotReader::new(&buf);
        assert_eq!(r.take_u8("a").unwrap(), 0xAB);
        assert_eq!(r.take_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64("c").unwrap(), u64::MAX - 7);
        assert_eq!(r.take_usize("d").unwrap(), 123_456);
        assert_eq!(r.take_f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_f64("f").unwrap().to_bits(), 5e-324f64.to_bits());
        assert_eq!(r.take_f64("g").unwrap().to_bits(), f64::NAN.to_bits());
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_errors() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        let mut r = SnapshotReader::new(&buf);
        let err = r.take_u64("needs eight").unwrap_err();
        assert!(err.to_string().contains("needs eight"), "{err}");

        let mut r = SnapshotReader::new(&buf);
        r.take_u8("one").unwrap();
        let err = r.expect_end().unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
