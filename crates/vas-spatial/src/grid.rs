//! A uniform grid index over a fixed extent.
//!
//! Two parts of the reproduction need a grid:
//!
//! * **Stratified sampling** (the paper's strongest baseline) divides the data
//!   domain into non-overlapping bins — e.g. the 316×316 grid used for
//!   Figure 1 and the 100-bin grid used in the user study — and samples each
//!   bin as evenly as possible.
//! * The **perception models** in `vas-user-sim` aggregate rendered points
//!   into coarse cells to mimic what a viewer can resolve.
//!
//! The grid maps points to `(col, row)` cells over a fixed [`BoundingBox`];
//! points outside the extent are clamped to the border cells, so no point is
//! ever lost (matching how stratified sampling treats boundary values).

use vas_data::{BoundingBox, Point};

/// A dense `cols × rows` grid accumulating point ids per cell.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    bounds: BoundingBox,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<usize>>,
    len: usize,
}

impl UniformGrid {
    /// Creates an empty grid of `cols × rows` cells spanning `bounds`.
    ///
    /// # Panics
    /// Panics if `cols` or `rows` is zero or `bounds` is empty.
    pub fn new(bounds: BoundingBox, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid dimensions must be positive");
        assert!(!bounds.is_empty(), "grid bounds must be non-empty");
        Self {
            bounds,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            len: 0,
        }
    }

    /// Creates a square grid with `side × side` cells.
    pub fn square(bounds: BoundingBox, side: usize) -> Self {
        Self::new(bounds, side, side)
    }

    /// Grid spanning the bounding box of `points` with all points inserted,
    /// ids being their position in the slice.
    pub fn build(points: &[Point], cols: usize, rows: usize) -> Self {
        let bounds = BoundingBox::from_points(points);
        let bounds = if bounds.is_empty() {
            BoundingBox::new(0.0, 0.0, 1.0, 1.0)
        } else if bounds.width() == 0.0 || bounds.height() == 0.0 {
            // Degenerate (collinear) data still needs a 2-D extent.
            bounds.padded(1e-9)
        } else {
            bounds
        };
        let mut grid = Self::new(bounds, cols, rows);
        for (i, p) in points.iter().enumerate() {
            grid.insert(i, p);
        }
        grid
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of cells (`cols × rows`).
    pub fn n_cells(&self) -> usize {
        self.cols * self.rows
    }

    /// Number of inserted points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no points have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The extent the grid covers.
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// The `(col, row)` cell a point falls into (clamped to the grid).
    pub fn cell_of(&self, p: &Point) -> (usize, usize) {
        let fx = (p.x - self.bounds.min_x) / self.bounds.width();
        let fy = (p.y - self.bounds.min_y) / self.bounds.height();
        let col = ((fx * self.cols as f64).floor() as isize).clamp(0, self.cols as isize - 1);
        let row = ((fy * self.rows as f64).floor() as isize).clamp(0, self.rows as isize - 1);
        (col as usize, row as usize)
    }

    /// Linear index of a `(col, row)` cell.
    #[inline]
    fn cell_index(&self, col: usize, row: usize) -> usize {
        row * self.cols + col
    }

    /// Inserts a point id into its cell.
    pub fn insert(&mut self, id: usize, p: &Point) {
        let (col, row) = self.cell_of(p);
        let idx = self.cell_index(col, row);
        self.cells[idx].push(id);
        self.len += 1;
    }

    /// Ids stored in the `(col, row)` cell.
    ///
    /// # Panics
    /// Panics if the cell coordinates are out of range.
    pub fn cell(&self, col: usize, row: usize) -> &[usize] {
        assert!(col < self.cols && row < self.rows, "cell out of range");
        &self.cells[self.cell_index(col, row)]
    }

    /// Number of points per cell, iterated row-major.
    pub fn cell_counts(&self) -> Vec<usize> {
        self.cells.iter().map(Vec::len).collect()
    }

    /// Number of cells that contain at least one point.
    pub fn occupied_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_empty()).count()
    }

    /// Iterates `(col, row, ids)` over all non-empty cells.
    pub fn iter_occupied(&self) -> impl Iterator<Item = (usize, usize, &[usize])> {
        self.cells.iter().enumerate().filter_map(move |(i, ids)| {
            if ids.is_empty() {
                None
            } else {
                Some((i % self.cols, i / self.cols, ids.as_slice()))
            }
        })
    }

    /// The rectangle in data coordinates covered by a `(col, row)` cell.
    pub fn cell_bounds(&self, col: usize, row: usize) -> BoundingBox {
        assert!(col < self.cols && row < self.rows, "cell out of range");
        let cw = self.bounds.width() / self.cols as f64;
        let ch = self.bounds.height() / self.rows as f64;
        BoundingBox::new(
            self.bounds.min_x + col as f64 * cw,
            self.bounds.min_y + row as f64 * ch,
            self.bounds.min_x + (col + 1) as f64 * cw,
            self.bounds.min_y + (row + 1) as f64 * ch,
        )
    }

    /// Ids of all points whose cell intersects `region`. This over-approximates
    /// a precise region query (cells straddling the border are returned whole);
    /// callers needing exactness filter by the original coordinates.
    ///
    /// Thin allocating wrapper over
    /// [`query_region_cells_into`](Self::query_region_cells_into); callers
    /// issuing one query per rendered frame should reuse a buffer instead.
    pub fn query_region_cells(&self, region: &BoundingBox) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_region_cells_into(region, &mut out);
        out
    }

    /// Writes the ids of all points whose cell intersects `region` into
    /// `out`, clearing it first. The buffer's capacity is retained across
    /// calls, so a reused buffer makes per-frame queries allocation-free in
    /// the steady state.
    ///
    /// Ids are produced in the same order as
    /// [`query_region_cells`](Self::query_region_cells).
    pub fn query_region_cells_into(&self, region: &BoundingBox, out: &mut Vec<usize>) {
        out.clear();
        for (col, row, ids) in self.iter_occupied() {
            if self.cell_bounds(col, row).intersects(region) {
                out.extend_from_slice(ids);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect()
    }

    #[test]
    fn build_and_counts() {
        let pts = unit_points(1_000, 1);
        let g = UniformGrid::build(&pts, 10, 10);
        assert_eq!(g.len(), 1_000);
        assert_eq!(g.n_cells(), 100);
        assert_eq!(g.cell_counts().iter().sum::<usize>(), 1_000);
        // With 1000 uniform points over 100 cells nearly every cell is occupied.
        assert!(g.occupied_cells() > 90);
    }

    #[test]
    fn points_map_to_correct_cells() {
        let bounds = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let g = UniformGrid::new(bounds, 10, 10);
        assert_eq!(g.cell_of(&Point::new(0.5, 0.5)), (0, 0));
        assert_eq!(g.cell_of(&Point::new(9.5, 0.5)), (9, 0));
        assert_eq!(g.cell_of(&Point::new(5.0, 5.0)), (5, 5));
        // Max corner clamps into the last cell.
        assert_eq!(g.cell_of(&Point::new(10.0, 10.0)), (9, 9));
        // Out-of-range points clamp to border cells.
        assert_eq!(g.cell_of(&Point::new(-5.0, 100.0)), (0, 9));
    }

    #[test]
    fn cell_bounds_tile_the_extent() {
        let bounds = BoundingBox::new(-1.0, -1.0, 1.0, 1.0);
        let g = UniformGrid::new(bounds, 4, 4);
        let mut area = 0.0;
        for row in 0..4 {
            for col in 0..4 {
                area += g.cell_bounds(col, row).area();
            }
        }
        assert!((area - bounds.area()).abs() < 1e-12);
        assert_eq!(
            g.cell_bounds(0, 0),
            BoundingBox::new(-1.0, -1.0, -0.5, -0.5)
        );
    }

    #[test]
    fn insert_and_cell_lookup() {
        let bounds = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        let mut g = UniformGrid::new(bounds, 2, 2);
        g.insert(7, &Point::new(0.25, 0.25));
        g.insert(8, &Point::new(0.75, 0.75));
        g.insert(9, &Point::new(0.76, 0.80));
        assert_eq!(g.cell(0, 0), &[7]);
        assert_eq!(g.cell(1, 1), &[8, 9]);
        assert!(g.cell(1, 0).is_empty());
        assert_eq!(g.occupied_cells(), 2);
    }

    #[test]
    fn query_region_cells_superset_of_exact() {
        let pts = unit_points(500, 2);
        let g = UniformGrid::build(&pts, 20, 20);
        let region = BoundingBox::new(0.2, 0.2, 0.4, 0.6);
        let ids = g.query_region_cells(&region);
        // Every point truly inside the region must be returned.
        for (i, p) in pts.iter().enumerate() {
            if region.contains(p) {
                assert!(ids.contains(&i), "missing point {i}");
            }
        }
    }

    #[test]
    fn query_region_cells_into_matches_and_reuses_the_buffer() {
        let pts = unit_points(400, 7);
        let g = UniformGrid::build(&pts, 16, 16);
        let region = BoundingBox::new(0.1, 0.1, 0.5, 0.9);
        let allocated = g.query_region_cells(&region);
        let mut buf = Vec::new();
        g.query_region_cells_into(&region, &mut buf);
        assert_eq!(buf, allocated);
        let cap = buf.capacity();
        // A smaller follow-up query clears but does not shrink the buffer.
        g.query_region_cells_into(&BoundingBox::new(0.0, 0.0, 0.05, 0.05), &mut buf);
        assert!(buf.len() < allocated.len());
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn degenerate_input_handled() {
        // All points identical → zero-area bounds padded internally.
        let pts = vec![Point::new(3.0, 3.0); 10];
        let g = UniformGrid::build(&pts, 4, 4);
        assert_eq!(g.len(), 10);
        // Empty input also works.
        let g2 = UniformGrid::build(&[], 4, 4);
        assert!(g2.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimensions_rejected() {
        let _ = UniformGrid::new(BoundingBox::new(0.0, 0.0, 1.0, 1.0), 0, 5);
    }

    #[test]
    #[should_panic(expected = "cell out of range")]
    fn out_of_range_cell_rejected() {
        let g = UniformGrid::new(BoundingBox::new(0.0, 0.0, 1.0, 1.0), 2, 2);
        let _ = g.cell(2, 0);
    }

    #[test]
    fn iter_occupied_reports_correct_coordinates() {
        let bounds = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        let mut g = UniformGrid::new(bounds, 3, 3);
        g.insert(0, &Point::new(0.9, 0.1)); // col 2, row 0
        let occupied: Vec<(usize, usize)> = g.iter_occupied().map(|(c, r, _)| (c, r)).collect();
        assert_eq!(occupied, vec![(2, 0)]);
    }
}
