//! # vas-spatial
//!
//! Spatial index substrates used throughout the VAS reproduction.
//!
//! The fixed-radius neighbourhood query at the heart of the `ES+Loc`
//! Interchange variant (Section IV-B, "Speed-Up using the Locality of
//! Proximity function") is abstracted behind the [`LocalityIndex`] trait,
//! with three interchangeable backends:
//!
//! * an **R-tree** — the paper's original choice, also serving region and
//!   nearest-neighbour queries,
//! * a **k-d tree** — used for the nearest-neighbour pass of the density
//!   embedding extension (Section V), made dynamic by a tombstone/overflow
//!   overlay, and
//! * a **spatial hash** ([`HashGrid`]) — cutoff-sized cells in an
//!   open-addressed table, the fastest backend for the Interchange loop's
//!   fixed-radius churn workload (and the default).
//!
//! Runtime backend selection goes through [`LocalityBackend`] /
//! [`AnyLocalityIndex`].
//!
//! We also provide a **uniform grid** over a fixed extent, which backs
//! stratified sampling (the paper's strongest baseline) and the
//! rendering-perception models.
//!
//! All structures are dynamic or cheaply rebuildable, hold `(id, Point)`
//! entries where `id` is an opaque `usize` chosen by the caller, and contain
//! no `unsafe` code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod hashgrid;
pub mod kdtree;
pub mod locality;
pub mod partition;
pub mod rtree;
pub mod snapshot;

pub use grid::UniformGrid;
pub use hashgrid::{GridOccupancy, HashGrid};
pub use kdtree::KdTree;
pub use locality::{AnyLocalityIndex, LocalityBackend, LocalityIndex, NeighborBatch};
pub use partition::ShardPartitioner;
pub use rtree::RTree;
pub use snapshot::{SnapshotError, SnapshotReader};
