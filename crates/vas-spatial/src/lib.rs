//! # vas-spatial
//!
//! Spatial index substrates used throughout the VAS reproduction.
//!
//! The paper relies on two classical spatial data structures:
//!
//! * an **R-tree** used to exploit the *locality* of the proximity kernel in
//!   the `ES+Loc` variant of the Interchange algorithm (Section IV-B,
//!   "Speed-Up using the Locality of Proximity function"), and
//! * a **k-d tree** used for the nearest-neighbour pass of the density
//!   embedding extension (Section V).
//!
//! We also provide a **uniform grid** index, which backs stratified sampling
//! (the paper's strongest baseline) and the rendering-perception models.
//!
//! All structures are dynamic or cheaply rebuildable, hold `(id, Point)`
//! entries where `id` is an opaque `usize` chosen by the caller, and contain
//! no `unsafe` code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod kdtree;
pub mod rtree;

pub use grid::UniformGrid;
pub use kdtree::KdTree;
pub use rtree::RTree;
