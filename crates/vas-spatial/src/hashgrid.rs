//! A dynamic spatial hash over cutoff-sized cells.
//!
//! Profiling after the PR 2 inner-loop rebuild showed the R-tree radius
//! query dominating the cost of a *rejected* Interchange candidate (~5µs of
//! ~8µs at 1M points / K = 10K), and a uniform grid with cells sized to the
//! kernel's cutoff radius answers the same fixed-radius query ~1.6× faster:
//! a query walks a small block of cells — each a flat slice of candidates,
//! clipped per row to the query circle — with no tree descent and no
//! bounding-box arithmetic. [`LocalityIndex::reset`] sizes cells at the
//! hinted radius exactly: a query then probes at most a 3×3 block (~7 cells
//! after row clipping) and scans ≈ `πr² + 4rc` worth of entries, robust
//! across sample densities from sparse (K = 500, ~1 entry per cell —
//! probe-bound) to dense (K = 10K, dozens per cell — scan-bound).
//!
//! [`HashGrid`] is that grid made dynamic and unbounded:
//!
//! * Cells are stored **sparsely** in an open-addressed hash table keyed by
//!   integer cell coordinates, so the grid covers an unbounded domain with
//!   memory proportional to the number of *occupied* cells.
//! * Cell coordinates are **clamped** to ±2³⁰, so astronomically distant
//!   points (GPS glitches, sentinel values) land in border cells instead of
//!   overflowing — the exact-distance filter still decides membership, so
//!   queries stay correct.
//! * `insert`/`remove` are O(1) amortized: removal `swap_remove`s within the
//!   cell's entry list, and a drained cell keeps its slot (and its list's
//!   capacity) instead of leaving a tombstone — probe chains never break, and
//!   the periodic table growth is the garbage-collection moment at which
//!   drained cells are dropped.
//! * Queries whose cell range would exceed the table size fall back to a
//!   table scan, so a pathologically wide radius degrades to the brute-force
//!   cost instead of iterating empty cells forever.
//!
//! Visitation order — row-major over the queried cell block, insertion order
//! (as modified by `swap_remove`) within a cell — is deterministic for a
//! given operation history, which the Interchange determinism contract
//! relies on.

use crate::{snapshot, LocalityIndex, NeighborBatch};
use vas_data::Point;

/// Cell coordinates are clamped to this magnitude; at the default cell size
/// of 1.0 that covers a domain of ±2³⁰ before border-cell clamping kicks in.
const CELL_COORD_LIMIT: f64 = (1u64 << 30) as f64;

/// Initial hash-table capacity (power of two).
const INITIAL_CAPACITY: usize = 64;

/// Relative slack added to the row-clipping geometry so floating-point
/// rounding at cell boundaries can never exclude a cell that holds an
/// in-radius point. Scaled by the magnitude of the coordinates involved
/// (plus the cell size), so it stays many orders of magnitude above the
/// ~1-ulp discrepancy between cell assignment (`p · inv_cell_size`) and
/// band geometry (`cy · cell_size`) even for data stored far from the
/// origin (e.g. projected UTM coordinates at ~1e7). Costs at most a
/// handful of extra probed cells per query.
const ROW_CLIP_SLACK: f64 = 1e-9;

/// A snapshot of how points spread across a [`HashGrid`]'s cells — the
/// measured signal behind the density-adaptive cell-sizing decision (see
/// [`HashGrid::occupancy`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridOccupancy {
    /// Number of cells currently holding at least one point.
    pub cells_occupied: usize,
    /// Total points in the grid.
    pub points: usize,
    /// `points / cells_occupied` (0.0 for an empty grid).
    pub mean_points_per_cell: f64,
    /// Largest per-cell point count.
    pub max_points_per_cell: usize,
}

/// One open-addressing slot: a cell's integer coordinates plus its entries.
#[derive(Debug, Clone, Default)]
struct Slot {
    key: (i32, i32),
    occupied: bool,
    items: Vec<(usize, Point)>,
}

/// A dynamic spatial-hash index mapping caller-chosen `usize` identifiers to
/// points, optimized for fixed-radius neighbourhood queries at a known
/// typical radius (the cell size).
///
/// Duplicate ids and points are permitted (the grid is a multiset);
/// [`remove`](LocalityIndex::remove) deletes one matching entry.
#[derive(Debug, Clone)]
pub struct HashGrid {
    cell_size: f64,
    inv_cell_size: f64,
    /// Open-addressed table; capacity is always a power of two.
    slots: Vec<Slot>,
    /// Slots with `occupied == true`, including drained cells awaiting the
    /// next rehash. Governs the load factor.
    occupied_slots: usize,
    /// Cells currently holding at least one entry (diagnostics).
    nonempty_cells: usize,
    len: usize,
}

impl Default for HashGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl HashGrid {
    /// Creates an empty grid with a placeholder cell size of 1.0; call
    /// [`reset`](LocalityIndex::reset) (or use
    /// [`with_cell_size`](Self::with_cell_size)) to size cells to the radius
    /// the workload will query at.
    pub fn new() -> Self {
        Self::with_cell_size(1.0)
    }

    /// Creates an empty grid whose cells are `cell_size` wide. Queries are
    /// correct at any radius, but fastest when the radius is close to the
    /// cell size (a small row-clipped cell block per query). Non-finite or
    /// non-positive sizes fall back to 1.0.
    pub fn with_cell_size(cell_size: f64) -> Self {
        let cell_size = Self::sanitize_cell_size(cell_size);
        Self {
            cell_size,
            inv_cell_size: 1.0 / cell_size,
            slots: vec![Slot::default(); INITIAL_CAPACITY],
            occupied_slots: 0,
            nonempty_cells: 0,
            len: 0,
        }
    }

    /// Builds a grid from `(id, point)` pairs.
    pub fn from_entries(cell_size: f64, entries: impl IntoIterator<Item = (usize, Point)>) -> Self {
        let mut grid = Self::with_cell_size(cell_size);
        for (id, p) in entries {
            LocalityIndex::insert(&mut grid, id, p);
        }
        grid
    }

    /// The configured cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of distinct non-empty cells (diagnostics; drained cells that
    /// still hold a table slot are not counted).
    pub fn occupied_cells(&self) -> usize {
        self.nonempty_cells
    }

    /// Hash-table capacity (diagnostics).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupancy statistics over the live cell table: how many cells hold
    /// points and how the points spread across them. This is the measurement
    /// the density-adaptive cell-sizing decision needs (halving cells bought
    /// ~15% dense but regressed sparse ~30%; without an occupancy signal the
    /// trade-off cannot be made per dataset). Pure read — no sizing behavior
    /// changes here. `VasSampler` records it through `vas-obs` when
    /// observability is attached.
    pub fn occupancy(&self) -> GridOccupancy {
        let mut cells_occupied = 0usize;
        let mut max_points_per_cell = 0usize;
        for slot in &self.slots {
            if slot.occupied && !slot.items.is_empty() {
                cells_occupied += 1;
                max_points_per_cell = max_points_per_cell.max(slot.items.len());
            }
        }
        let mean_points_per_cell = if cells_occupied > 0 {
            self.len as f64 / cells_occupied as f64
        } else {
            0.0
        };
        GridOccupancy {
            cells_occupied,
            points: self.len,
            mean_points_per_cell,
            max_points_per_cell,
        }
    }

    pub(crate) fn sanitize_cell_size(cell_size: f64) -> f64 {
        if cell_size.is_finite() && cell_size > 0.0 {
            cell_size
        } else {
            1.0
        }
    }

    /// Maps one scaled coordinate (`value / cell_size`) to a clamped integer
    /// cell coordinate. Total by construction: the `f64 → i32` cast
    /// saturates, so NaN lands in cell 0 and ±∞ in the clamp-border cells —
    /// every representable point has a cell. Shared with the deterministic
    /// shard partitioner (`crate::partition`), whose cell → shard mapping is
    /// derived from exactly this decomposition.
    #[inline]
    pub(crate) fn coord(scaled: f64) -> i32 {
        scaled.floor().clamp(-CELL_COORD_LIMIT, CELL_COORD_LIMIT) as i32
    }

    #[inline]
    pub(crate) fn cell_of(&self, p: &Point) -> (i32, i32) {
        (
            Self::coord(p.x * self.inv_cell_size),
            Self::coord(p.y * self.inv_cell_size),
        )
    }

    /// Mixes the two cell coordinates into a table hash (splitmix64 finalizer
    /// over the packed key). Also the hash the shard partitioner reduces
    /// modulo the shard count, so shard assignment inherits this mix's
    /// avalanche behaviour.
    #[inline]
    pub(crate) fn hash_key(key: (i32, i32)) -> usize {
        let packed = ((key.0 as u32 as u64) << 32) | key.1 as u32 as u64;
        let mut h = packed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        h ^= h >> 32;
        h as usize
    }

    /// Index of the slot holding `key`, if that cell has ever been claimed
    /// since the last rehash/reset.
    #[inline]
    fn find_slot(&self, key: (i32, i32)) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = Self::hash_key(key) & mask;
        loop {
            let slot = &self.slots[i];
            if !slot.occupied {
                return None;
            }
            if slot.key == key {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }

    /// Index of the slot for `key`, claiming a fresh slot (and growing the
    /// table) as needed.
    fn slot_for_insert(&mut self, key: (i32, i32)) -> usize {
        // Grow before probing so the claimed slot survives the rehash.
        if (self.occupied_slots + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::hash_key(key) & mask;
        loop {
            let slot = &mut self.slots[i];
            if !slot.occupied {
                slot.occupied = true;
                slot.key = key;
                self.occupied_slots += 1;
                return i;
            }
            if slot.key == key {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// The shared traversal under both radius-query forms: hands `visit_cell`
    /// the item slice of every cell that can intersect the query circle, in
    /// the deterministic order the visitation contract promises — row-major
    /// over the clipped cell block in the typical case, table order under the
    /// wide-radius fallback. Entries are *not* distance-filtered here; the
    /// caller applies the exact `dist2 <= r²` filter per item.
    fn for_each_candidate_cell(
        &self,
        center: &Point,
        radius: f64,
        mut visit_cell: impl FnMut(&[(usize, Point)]),
    ) {
        if self.len == 0 || radius.is_nan() || radius < 0.0 {
            return;
        }
        let r2 = radius * radius;
        let min_cx = Self::coord((center.x - radius) * self.inv_cell_size);
        let max_cx = Self::coord((center.x + radius) * self.inv_cell_size);
        let min_cy = Self::coord((center.y - radius) * self.inv_cell_size);
        let max_cy = Self::coord((center.y + radius) * self.inv_cell_size);
        let cells = (max_cx as i64 - min_cx as i64 + 1) * (max_cy as i64 - min_cy as i64 + 1);
        if cells <= 2 * self.slots.len() as i64 {
            // Typical case: walk the (small) cell block row-major, clipping
            // each row's column range to the circle: a row whose y-band is
            // `dy` away from the center only needs columns within
            // `±sqrt(r² − dy²)`. Skipped when any coordinate clamped (the
            // band arithmetic is meaningless for border cells holding
            // faraway points).
            let limit = CELL_COORD_LIMIT as i32;
            let clamped =
                min_cx <= -limit || max_cx >= limit || min_cy <= -limit || max_cy >= limit;
            let slack_y = (center.y.abs() + radius + self.cell_size) * ROW_CLIP_SLACK;
            let slack_x = (center.x.abs() + radius + self.cell_size) * ROW_CLIP_SLACK;
            for cy in min_cy..=max_cy {
                let (row_min_cx, row_max_cx) = if clamped {
                    (min_cx, max_cx)
                } else {
                    let band_lo = cy as f64 * self.cell_size - slack_y;
                    let band_hi = band_lo + self.cell_size + 2.0 * slack_y;
                    let dy = (band_lo - center.y).max(center.y - band_hi).max(0.0);
                    let dy2 = dy * dy;
                    if dy2 > r2 {
                        continue;
                    }
                    let rx = (r2 - dy2).sqrt() + slack_x;
                    (
                        Self::coord((center.x - rx) * self.inv_cell_size).max(min_cx),
                        Self::coord((center.x + rx) * self.inv_cell_size).min(max_cx),
                    )
                };
                for cx in row_min_cx..=row_max_cx {
                    if let Some(i) = self.find_slot((cx, cy)) {
                        visit_cell(&self.slots[i].items);
                    }
                }
            }
        } else {
            // The cell block is larger than the table: scanning every
            // occupied slot is cheaper than probing mostly-empty cells.
            for slot in &self.slots {
                if !slot.occupied
                    || slot.key.0 < min_cx
                    || slot.key.0 > max_cx
                    || slot.key.1 < min_cy
                    || slot.key.1 > max_cy
                {
                    continue;
                }
                visit_cell(&slot.items);
            }
        }
    }

    /// Doubles the table, re-placing live cells and dropping drained ones
    /// (this is the only moment a claimed slot is ever given back).
    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![Slot::default(); new_cap]);
        self.occupied_slots = 0;
        let mask = new_cap - 1;
        for slot in old {
            if !slot.occupied || slot.items.is_empty() {
                continue;
            }
            let mut i = Self::hash_key(slot.key) & mask;
            while self.slots[i].occupied {
                i = (i + 1) & mask;
            }
            self.slots[i] = Slot {
                key: slot.key,
                occupied: true,
                items: slot.items,
            };
            self.occupied_slots += 1;
        }
    }
}

impl LocalityIndex for HashGrid {
    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self, radius_hint: f64) {
        let cell_size = Self::sanitize_cell_size(radius_hint);
        self.cell_size = cell_size;
        self.inv_cell_size = 1.0 / cell_size;
        for slot in &mut self.slots {
            slot.occupied = false;
            slot.items.clear();
        }
        self.occupied_slots = 0;
        self.nonempty_cells = 0;
        self.len = 0;
    }

    fn insert(&mut self, id: usize, point: Point) {
        let key = self.cell_of(&point);
        let i = self.slot_for_insert(key);
        let items = &mut self.slots[i].items;
        if items.is_empty() {
            self.nonempty_cells += 1;
        }
        items.push((id, point));
        self.len += 1;
    }

    fn remove(&mut self, id: usize, point: &Point) -> bool {
        let key = self.cell_of(point);
        let Some(i) = self.find_slot(key) else {
            return false;
        };
        let items = &mut self.slots[i].items;
        match items.iter().position(|(eid, ep)| *eid == id && ep == point) {
            Some(pos) => {
                items.swap_remove(pos);
                if items.is_empty() {
                    self.nonempty_cells -= 1;
                }
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    fn for_each_in_radius_with_dist2(
        &self,
        center: &Point,
        radius: f64,
        mut visit: impl FnMut(usize, &Point, f64),
    ) {
        let r2 = radius * radius;
        self.for_each_candidate_cell(center, radius, |items| {
            for &(id, ref p) in items {
                let d2 = p.dist2(center);
                if d2 <= r2 {
                    visit(id, p, d2);
                }
            }
        });
    }

    fn gather_in_radius_into(&self, center: &Point, radius: f64, out: &mut NeighborBatch) {
        out.clear();
        let r2 = radius * radius;
        self.for_each_candidate_cell(center, radius, |items| {
            // Cell-by-cell lane fill: one reservation per cell, then a tight
            // push loop over the cell's flat entry slice. Same traversal and
            // same per-item `d2 <= r²` filter as the visitor path, so lanes
            // land in exactly the visitation order.
            out.ids.reserve(items.len());
            out.dist2.reserve(items.len());
            for &(id, ref p) in items {
                let d2 = p.dist2(center);
                if d2 <= r2 {
                    out.ids.push(id);
                    out.dist2.push(d2);
                }
            }
        });
    }

    fn occupancy_stats(&self) -> Option<GridOccupancy> {
        Some(self.occupancy())
    }
}

/// Checkpoint snapshot codec — see [`crate::snapshot`].
impl HashGrid {
    /// Serializes the grid: cell-size bits, entry count, then every entry in
    /// cell-grouped table-scan order.
    ///
    /// The table layout itself (slot positions, drained cells, growth
    /// history) is deliberately **not** stored: replaying the inserts in the
    /// recorded order reproduces each cell's item vector exactly, and every
    /// observable traversal — the geometric query path walks cells row-major
    /// by coordinates, per-cell items in insertion order — depends only on
    /// that, not on where cells landed in the open-addressed table.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        snapshot::put_f64(out, self.cell_size);
        snapshot::put_usize(out, self.len);
        for slot in &self.slots {
            if !slot.occupied {
                continue;
            }
            for &(id, ref p) in &slot.items {
                snapshot::put_usize(out, id);
                snapshot::put_f64(out, p.x);
                snapshot::put_f64(out, p.y);
                snapshot::put_f64(out, p.value);
            }
        }
    }

    /// Restores a grid from [`snapshot_into`](Self::snapshot_into) bytes by
    /// replaying the recorded inserts into a fresh table.
    pub fn restore_snapshot(
        r: &mut snapshot::SnapshotReader<'_>,
    ) -> Result<Self, snapshot::SnapshotError> {
        let cell_size = r.take_f64("hashgrid cell size")?;
        if !cell_size.is_finite() || cell_size <= 0.0 {
            return Err(snapshot::SnapshotError::new(format!(
                "hashgrid cell size {cell_size} is not finite positive"
            )));
        }
        let n = r.take_usize("hashgrid entry count")?;
        let mut grid = HashGrid::with_cell_size(cell_size);
        debug_assert_eq!(grid.cell_size.to_bits(), cell_size.to_bits());
        for i in 0..n {
            let id = r.take_usize("hashgrid entry id")?;
            let x = r.take_f64("hashgrid entry x")?;
            let y = r.take_f64("hashgrid entry y")?;
            let value = r.take_f64("hashgrid entry value")?;
            if !x.is_finite() || !y.is_finite() {
                return Err(snapshot::SnapshotError::new(format!(
                    "hashgrid entry {i} has non-finite coordinates ({x}, {y})"
                )));
            }
            LocalityIndex::insert(&mut grid, id, Point::with_value(x, y, value));
        }
        Ok(grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
            .collect()
    }

    fn brute_force(pts: &[Point], center: &Point, radius: f64) -> Vec<usize> {
        let mut ids: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(center) <= radius)
            .map(|(i, _)| i)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn empty_grid_behaviour() {
        let g = HashGrid::new();
        assert!(g.is_empty());
        assert_eq!(LocalityIndex::len(&g), 0);
        assert!(g.query_radius(&Point::new(0.0, 0.0), 10.0).is_empty());
        assert_eq!(g.occupied_cells(), 0);
    }

    #[test]
    fn degenerate_cell_sizes_are_sanitized() {
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let g = HashGrid::with_cell_size(bad);
            assert_eq!(g.cell_size(), 1.0, "cell size {bad} not sanitized");
        }
        let mut g = HashGrid::with_cell_size(2.0);
        g.reset(f64::NEG_INFINITY);
        assert_eq!(g.cell_size(), 1.0);
    }

    #[test]
    fn radius_query_matches_brute_force_across_cell_sizes() {
        let pts = random_points(1_000, 3);
        let center = Point::new(5.0, -5.0);
        // Cell sizes far from the query radius must stay correct (only the
        // constant factor changes).
        for cell in [0.5, 4.0, 40.0, 500.0] {
            let g = HashGrid::from_entries(cell, pts.iter().copied().enumerate());
            assert_eq!(LocalityIndex::len(&g), pts.len());
            for radius in [1.0, 10.0, 40.0] {
                let mut got: Vec<usize> = g
                    .query_radius(&center, radius)
                    .into_iter()
                    .map(|(id, _)| id)
                    .collect();
                got.sort_unstable();
                assert_eq!(
                    got,
                    brute_force(&pts, &center, radius),
                    "cell {cell}, radius {radius}"
                );
            }
        }
    }

    #[test]
    fn wide_query_takes_the_table_scan_path() {
        let pts = random_points(300, 5);
        // Tiny cells + huge radius forces the cell block past the table size.
        let g = HashGrid::from_entries(1e-3, pts.iter().copied().enumerate());
        let center = Point::new(0.0, 0.0);
        let mut got: Vec<usize> = g
            .query_radius(&center, 150.0)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        got.sort_unstable();
        assert_eq!(got, brute_force(&pts, &center, 150.0));
    }

    #[test]
    fn table_scan_fallback_is_pinned_against_brute_force() {
        // Dedicated coverage for the wide-radius fallback: tiny cells and a
        // huge radius make the candidate cell block vastly larger than the
        // hash table, which must flip the query into the occupied-slot scan.
        let pts = random_points(400, 29);
        let g = HashGrid::from_entries(1e-3, pts.iter().copied().enumerate());
        let block_cells = (2.0 * 120.0 / 1e-3) as i64; // cells per axis at r=120
        assert!(
            block_cells * block_cells > 2 * g.capacity() as i64,
            "test no longer reaches the table-scan fallback"
        );
        for (radius, center) in [
            (120.0, Point::new(0.0, 0.0)),
            (90.0, Point::new(30.0, -60.0)),
            (250.0, Point::new(-80.0, 80.0)),
        ] {
            // The visitor path: ids and exact squared distances both match a
            // brute-force scan.
            let mut got: Vec<(usize, u64)> = Vec::new();
            g.for_each_in_radius_with_dist2(&center, radius, |id, _, d2| {
                got.push((id, d2.to_bits()));
            });
            got.sort_unstable();
            let mut expected: Vec<(usize, u64)> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist(&center) <= radius)
                .map(|(i, p)| (i, p.dist2(&center).to_bits()))
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "radius {radius}");
            assert!(!got.is_empty(), "radius {radius} found nothing");
            // The gather path produces the same lanes in the same order as
            // the (unsorted) visitor sequence.
            let mut seq: Vec<(usize, u64)> = Vec::new();
            g.for_each_in_radius_with_dist2(&center, radius, |id, _, d2| {
                seq.push((id, d2.to_bits()));
            });
            let mut batch = NeighborBatch::new();
            g.gather_in_radius_into(&center, radius, &mut batch);
            let lanes: Vec<(usize, u64)> = batch
                .ids
                .iter()
                .zip(&batch.dist2)
                .map(|(&id, d2)| (id, d2.to_bits()))
                .collect();
            assert_eq!(lanes, seq, "radius {radius}: gather diverged from visitor");
        }
    }

    #[test]
    fn interleaved_insert_remove_matches_brute_force() {
        // The Interchange access pattern: constant insert/remove churn.
        let mut rng = StdRng::seed_from_u64(8);
        let mut g = HashGrid::with_cell_size(7.0);
        let mut reference: Vec<(usize, Point)> = Vec::new();
        let mut next_id = 0usize;
        for step in 0..3_000 {
            if reference.is_empty() || rng.gen_bool(0.6) {
                let p = Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
                LocalityIndex::insert(&mut g, next_id, p);
                reference.push((next_id, p));
                next_id += 1;
            } else {
                let idx = rng.gen_range(0..reference.len());
                let (id, p) = reference.swap_remove(idx);
                assert!(LocalityIndex::remove(&mut g, id, &p), "step {step}");
            }
            assert_eq!(LocalityIndex::len(&g), reference.len(), "step {step}");
        }
        let center = Point::new(0.0, 0.0);
        let mut got: Vec<usize> = g
            .query_radius(&center, 25.0)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = reference
            .iter()
            .filter(|(_, p)| p.dist(&center) <= 25.0)
            .map(|(id, _)| *id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn drained_cells_are_reused_and_collected_on_growth() {
        let mut g = HashGrid::with_cell_size(1.0);
        // Fill and drain a single cell repeatedly: the slot (and its list
        // capacity) must be reused, not tombstoned.
        let p = Point::new(0.5, 0.5);
        for round in 0..100 {
            LocalityIndex::insert(&mut g, round, p);
            assert!(LocalityIndex::remove(&mut g, round, &p));
        }
        assert_eq!(g.capacity(), INITIAL_CAPACITY, "drained cell leaked slots");
        // Touch many distinct cells to force growth; the drained cell is
        // dropped during the rehash.
        for i in 0..200 {
            LocalityIndex::insert(&mut g, 1_000 + i, Point::new(i as f64 * 10.0, 0.0));
        }
        assert_eq!(LocalityIndex::len(&g), 200);
        assert_eq!(g.occupied_cells(), 200);
        let mut found: Vec<usize> = g
            .query_radius(&Point::new(995.0, 0.0), 1_000.0)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        found.sort_unstable();
        assert_eq!(found.len(), 200);
    }

    #[test]
    fn duplicate_points_are_supported() {
        let p = Point::new(1.0, 1.0);
        let mut g = HashGrid::with_cell_size(2.0);
        for id in 0..20 {
            LocalityIndex::insert(&mut g, id, p);
        }
        assert_eq!(LocalityIndex::len(&g), 20);
        assert_eq!(g.query_radius(&p, 0.1).len(), 20);
        assert!(LocalityIndex::remove(&mut g, 7, &p));
        assert_eq!(LocalityIndex::len(&g), 19);
        assert!(!LocalityIndex::remove(&mut g, 7, &p));
    }

    #[test]
    fn far_out_points_clamp_into_border_cells_without_breaking_queries() {
        let mut g = HashGrid::with_cell_size(1.0);
        // Well beyond the ±2³⁰ clamp at cell size 1.0.
        let glitch_a = Point::new(1e18, 1e18);
        let glitch_b = Point::new(1.5e18, 1.5e18);
        let normal = Point::new(3.0, 4.0);
        LocalityIndex::insert(&mut g, 0, glitch_a);
        LocalityIndex::insert(&mut g, 1, glitch_b);
        LocalityIndex::insert(&mut g, 2, normal);
        // A local query never sees the glitches.
        let near: Vec<usize> = g
            .query_radius(&Point::new(3.0, 4.0), 5.0)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert_eq!(near, vec![2]);
        // A query centred on a glitch finds exactly the glitches in range
        // (both clamp to the same border cell; the distance filter decides).
        let at_glitch: Vec<usize> = g
            .query_radius(&glitch_a, 1e18)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert_eq!(at_glitch, vec![0, 1]);
        // And the glitches can be removed again.
        assert!(LocalityIndex::remove(&mut g, 0, &glitch_a));
        assert!(LocalityIndex::remove(&mut g, 1, &glitch_b));
        assert_eq!(LocalityIndex::len(&g), 1);
    }

    #[test]
    fn query_radius_into_reuses_buffer_capacity() {
        let pts = random_points(300, 12);
        let g = HashGrid::from_entries(50.0, pts.iter().copied().enumerate());
        let mut buf = Vec::new();
        g.query_radius_into(&Point::new(0.0, 0.0), 400.0, &mut buf);
        assert_eq!(buf.len(), 300);
        let cap = buf.capacity();
        g.query_radius_into(&Point::new(0.0, 0.0), 1.0, &mut buf);
        assert!(buf.len() < 300);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn queries_far_from_the_origin_match_brute_force() {
        // Projected coordinates (UTM-style ~1e7) with metre-scale cells: the
        // discrepancy between cell assignment and row-band geometry reaches
        // many ulps here, which the magnitude-scaled clipping slack must
        // absorb (a fixed cell-relative slack silently dropped neighbours).
        let mut rng = StdRng::seed_from_u64(17);
        let origin = Point::new(5.43e6, 9.87e6);
        let pts: Vec<Point> = (0..800)
            .map(|_| {
                Point::new(
                    origin.x + rng.gen_range(-40.0..40.0),
                    origin.y + rng.gen_range(-40.0..40.0),
                )
            })
            .collect();
        let g = HashGrid::from_entries(1.0, pts.iter().copied().enumerate());
        for _ in 0..50 {
            let q = Point::new(
                origin.x + rng.gen_range(-45.0..45.0),
                origin.y + rng.gen_range(-45.0..45.0),
            );
            for radius in [1.0, 3.0, 12.0] {
                let mut got: Vec<usize> = g
                    .query_radius(&q, radius)
                    .into_iter()
                    .map(|(id, _)| id)
                    .collect();
                got.sort_unstable();
                assert_eq!(got, brute_force(&pts, &q, radius), "radius {radius}");
            }
        }
    }

    #[test]
    fn reset_retunes_the_cell_size_to_the_hint() {
        let mut g = HashGrid::with_cell_size(3.0);
        assert_eq!(g.cell_size(), 3.0);
        g.reset(10.0);
        assert_eq!(g.cell_size(), 10.0);
        // Steady churn (the Interchange accept pattern) never changes the
        // cell geometry.
        let mut rng = StdRng::seed_from_u64(33);
        let pts: Vec<Point> = (0..2_000)
            .map(|_| Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)))
            .collect();
        for (i, p) in pts.iter().enumerate() {
            LocalityIndex::insert(&mut g, i, *p);
        }
        for i in 0..2_000 {
            let j = i % pts.len();
            assert!(LocalityIndex::remove(&mut g, j, &pts[j]));
            LocalityIndex::insert(&mut g, j, pts[j]);
        }
        assert_eq!(g.cell_size(), 10.0);
        assert_eq!(LocalityIndex::len(&g), pts.len());
    }

    #[test]
    fn visitation_order_is_stable_for_identical_histories() {
        // Two grids fed the same operation sequence must visit neighbours in
        // the same order — the property the Interchange determinism contract
        // depends on.
        let pts = random_points(500, 21);
        let build = |_: ()| {
            let mut g = HashGrid::with_cell_size(9.0);
            for (i, p) in pts.iter().enumerate() {
                LocalityIndex::insert(&mut g, i, *p);
            }
            for (i, p) in pts.iter().enumerate().take(200) {
                if i % 3 == 0 {
                    assert!(LocalityIndex::remove(&mut g, i, p));
                }
            }
            g
        };
        let (a, b) = (build(()), build(()));
        let center = Point::new(1.0, 2.0);
        let mut seq_a = Vec::new();
        let mut seq_b = Vec::new();
        a.for_each_in_radius(&center, 30.0, |id, _| seq_a.push(id));
        b.for_each_in_radius(&center, 30.0, |id, _| seq_b.push(id));
        assert_eq!(seq_a, seq_b);
        assert!(!seq_a.is_empty());
    }

    proptest::proptest! {
        /// Radius queries agree with a brute-force scan for arbitrary point
        /// sets — including exact duplicates, points exactly on cell
        /// boundaries, and points far beyond the clamped coordinate range —
        /// and arbitrary cell-size/radius combinations.
        #[test]
        fn radius_query_matches_brute_force_prop(
            pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..200),
            dup_mask in proptest::collection::vec(proptest::bool::ANY, 1..200),
            boundary_count in 0usize..8,
            glitch_count in 0usize..3,
            qx in -120.0f64..120.0,
            qy in -120.0f64..120.0,
            radius in 0.1f64..80.0,
            cell in 0.05f64..200.0,
            shift in -1.0f64..1.0,
        ) {
            // A large shared offset moves the whole scene far from the
            // origin, exercising the coordinate regime where cell-boundary
            // rounding is many ulps wide.
            let offset = (shift * 3.0).trunc() * 5e6;
            let mut points: Vec<Point> =
                pts.iter().map(|&(x, y)| Point::new(x + offset, y + offset)).collect();
            // Exact duplicates of a prefix of the set.
            for (i, dup) in dup_mask.iter().enumerate() {
                if *dup && i < points.len() {
                    let p = points[i];
                    points.push(p);
                }
            }
            // Points exactly on cell boundaries (integer multiples of the
            // cell size).
            for i in 0..boundary_count {
                points.push(Point::new(offset + cell * i as f64, offset - cell * (i as f64)));
            }
            // Points far outside the clamped coordinate range.
            for i in 0..glitch_count {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                points.push(Point::new(sign * 3e18, sign * 2e18));
            }
            let grid = HashGrid::from_entries(cell, points.iter().copied().enumerate());
            proptest::prop_assert_eq!(LocalityIndex::len(&grid), points.len());
            let q = Point::new(qx + offset, qy + offset);
            let mut got: Vec<usize> = grid
                .query_radius(&q, radius)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            got.sort_unstable();
            proptest::prop_assert_eq!(got, brute_force(&points, &q, radius));
        }

        /// After removing an arbitrary subset of entries, the grid contains
        /// exactly the remaining ones.
        #[test]
        fn removal_leaves_exactly_the_remaining_entries(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..120),
            removal_mask in proptest::collection::vec(proptest::bool::ANY, 1..120),
            cell in 0.5f64..40.0,
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mut grid = HashGrid::from_entries(cell, points.iter().copied().enumerate());
            let mut kept = Vec::new();
            for (i, p) in points.iter().enumerate() {
                if removal_mask.get(i).copied().unwrap_or(false) {
                    proptest::prop_assert!(LocalityIndex::remove(&mut grid, i, p));
                } else {
                    kept.push(i);
                }
            }
            proptest::prop_assert_eq!(LocalityIndex::len(&grid), kept.len());
            let mut found: Vec<usize> = grid
                .query_radius(&Point::new(0.0, 0.0), 1_000.0)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            found.sort_unstable();
            proptest::prop_assert_eq!(found, kept);
        }
    }
}
