//! A dynamic R-tree over 2-D points.
//!
//! The `ES+Loc` variant of the Interchange algorithm (paper Section IV-B)
//! keeps the current sample in an R-tree so that, when a new data point is
//! considered, only the sample points within the kernel's effective radius
//! take part in the Expand/Shrink bookkeeping. That requires a structure that
//! supports **insertion**, **deletion** (the sample constantly swaps points in
//! and out) and **radius search**; nearest-neighbour search is also provided
//! because several consumers (perception models, density checks) need it.
//!
//! The implementation is a textbook Guttman R-tree with quadratic splits and
//! a condense-and-reinsert deletion path. Entries are `(id, Point)` pairs; the
//! tree never inspects `Point::value`.

use crate::{snapshot, LocalityIndex};
use vas_data::{BoundingBox, Point};

/// Maximum number of entries per node before a split.
///
/// Tuned for the Interchange hot path (radius queries returning hundreds of
/// entries): wide nodes keep entries contiguous and the tree shallow, which
/// measured ~3× faster than the original fan-out of 8 on the
/// `fig10_inner_loop` workload. Quadratic-split cost grows as the square of
/// the fan-out but is amortized over the node's lifetime.
const MAX_ENTRIES: usize = 32;
/// Minimum number of entries per node (underflow threshold).
const MIN_ENTRIES: usize = 12;

/// An entry stored in a leaf node.
#[derive(Debug, Clone, Copy)]
struct LeafEntry {
    id: usize,
    point: Point,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<LeafEntry>,
    },
    Internal {
        children: Vec<(BoundingBox, Box<Node>)>,
    },
}

impl Node {
    fn bbox(&self) -> BoundingBox {
        match self {
            Node::Leaf { entries } => {
                let mut bb = BoundingBox::EMPTY;
                for e in entries {
                    bb.extend(&e.point);
                }
                bb
            }
            Node::Internal { children } => {
                let mut bb = BoundingBox::EMPTY;
                for (cb, _) in children {
                    bb = bb.union(cb);
                }
                bb
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf { entries } => entries.len(),
            Node::Internal { children } => children.len(),
        }
    }

    fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }
}

/// A dynamic R-tree mapping caller-chosen `usize` identifiers to points.
///
/// Duplicate ids are permitted (the tree is a multiset); `remove` deletes one
/// matching entry.
#[derive(Debug, Clone)]
pub struct RTree {
    root: Node,
    len: usize,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
        }
    }

    /// Builds a tree from `(id, point)` pairs.
    pub fn from_entries(entries: impl IntoIterator<Item = (usize, Point)>) -> Self {
        let mut tree = Self::new();
        for (id, p) in entries {
            tree.insert(id, p);
        }
        tree
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding box of all stored points ([`BoundingBox::EMPTY`] when empty).
    pub fn bounds(&self) -> BoundingBox {
        self.root.bbox()
    }

    /// Inserts an entry.
    pub fn insert(&mut self, id: usize, point: Point) {
        let entry = LeafEntry { id, point };
        if let Some((left, right)) = Self::insert_rec(&mut self.root, entry) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Internal {
                    children: Vec::new(),
                },
            );
            // `old_root` has been replaced by `left` contents already; rebuild.
            drop(old_root);
            self.root = Node::Internal {
                children: vec![
                    (left.bbox(), Box::new(left)),
                    (right.bbox(), Box::new(right)),
                ],
            };
        }
        self.len += 1;
    }

    /// Inserts into the subtree rooted at `node`. If the node had to split,
    /// returns the two replacement nodes (the caller installs them).
    fn insert_rec(node: &mut Node, entry: LeafEntry) -> Option<(Node, Node)> {
        match node {
            Node::Leaf { entries } => {
                entries.push(entry);
                if entries.len() > MAX_ENTRIES {
                    let (a, b) = split_leaf(std::mem::take(entries));
                    Some((Node::Leaf { entries: a }, Node::Leaf { entries: b }))
                } else {
                    None
                }
            }
            Node::Internal { children } => {
                // Choose the child whose bbox needs least enlargement.
                let mut best = 0usize;
                let mut best_enlargement = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, (bb, _)) in children.iter().enumerate() {
                    let enlargement = bb.enlargement(&entry.point);
                    let area = bb.area();
                    if enlargement < best_enlargement
                        || (enlargement == best_enlargement && area < best_area)
                    {
                        best = i;
                        best_enlargement = enlargement;
                        best_area = area;
                    }
                }
                let split = Self::insert_rec(&mut children[best].1, entry);
                match split {
                    None => {
                        children[best].0.extend(&entry.point);
                        None
                    }
                    Some((a, b)) => {
                        children.remove(best);
                        children.push((a.bbox(), Box::new(a)));
                        children.push((b.bbox(), Box::new(b)));
                        if children.len() > MAX_ENTRIES {
                            let (ca, cb) = split_internal(std::mem::take(children));
                            Some((
                                Node::Internal { children: ca },
                                Node::Internal { children: cb },
                            ))
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }

    /// Removes one entry matching `(id, point)` exactly. Returns `true` if an
    /// entry was removed.
    pub fn remove(&mut self, id: usize, point: &Point) -> bool {
        let mut orphans: Vec<LeafEntry> = Vec::new();
        let removed = Self::remove_rec(&mut self.root, id, point, &mut orphans);
        if !removed {
            return false;
        }
        self.len -= 1;
        // Collapse a root that has a single internal child.
        loop {
            let replace = match &mut self.root {
                Node::Internal { children } if children.len() == 1 => {
                    Some(*children.pop().expect("len checked").1)
                }
                Node::Internal { children } if children.is_empty() => Some(Node::Leaf {
                    entries: Vec::new(),
                }),
                _ => None,
            };
            match replace {
                Some(new_root) => self.root = new_root,
                None => break,
            }
        }
        // Reinsert entries from condensed (underflowed) nodes.
        self.len -= orphans.len();
        for e in orphans {
            self.insert(e.id, e.point);
        }
        true
    }

    /// Removes from the subtree. Underflowed leaves are dissolved into
    /// `orphans` for reinsertion. Returns whether the entry was found.
    fn remove_rec(node: &mut Node, id: usize, point: &Point, orphans: &mut Vec<LeafEntry>) -> bool {
        match node {
            Node::Leaf { entries } => {
                if let Some(pos) = entries.iter().position(|e| e.id == id && e.point == *point) {
                    entries.swap_remove(pos);
                    true
                } else {
                    false
                }
            }
            Node::Internal { children } => {
                let mut removed_at = None;
                for (i, (bb, child)) in children.iter_mut().enumerate() {
                    if bb.contains(point) && Self::remove_rec(child, id, point, orphans) {
                        removed_at = Some(i);
                        break;
                    }
                }
                let Some(i) = removed_at else { return false };
                // Recompute the child's bbox; condense if it underflowed.
                if children[i].1.len() < MIN_ENTRIES && children[i].1.is_leaf() {
                    let (_, child) = children.swap_remove(i);
                    if let Node::Leaf { entries } = *child {
                        orphans.extend(entries);
                    }
                } else if children[i].1.len() == 0 {
                    // An internal child can become empty once all of its own
                    // leaf children have been dissolved; drop the empty shell
                    // so it never attracts future insertions.
                    children.swap_remove(i);
                } else {
                    children[i].0 = children[i].1.bbox();
                }
                true
            }
        }
    }

    /// All entries whose point lies inside `region` (inclusive bounds).
    pub fn query_region(&self, region: &BoundingBox) -> Vec<(usize, Point)> {
        let mut out = Vec::new();
        Self::query_region_rec(&self.root, region, &mut out);
        out
    }

    fn query_region_rec(node: &Node, region: &BoundingBox, out: &mut Vec<(usize, Point)>) {
        match node {
            Node::Leaf { entries } => {
                for e in entries {
                    if region.contains(&e.point) {
                        out.push((e.id, e.point));
                    }
                }
            }
            Node::Internal { children } => {
                for (bb, child) in children {
                    if bb.intersects(region) {
                        Self::query_region_rec(child, region, out);
                    }
                }
            }
        }
    }

    fn query_radius_rec(
        node: &Node,
        region: &BoundingBox,
        center: &Point,
        r2: f64,
        visit: &mut impl FnMut(usize, &Point, f64),
    ) {
        match node {
            Node::Leaf { entries } => {
                for e in entries {
                    let d2 = e.point.dist2(center);
                    if d2 <= r2 {
                        visit(e.id, &e.point, d2);
                    }
                }
            }
            Node::Internal { children } => {
                for (bb, child) in children {
                    if bb.intersects(region) && bb.dist2_to_point(center) <= r2 {
                        Self::query_radius_rec(child, region, center, r2, visit);
                    }
                }
            }
        }
    }

    /// The nearest stored entry to `query`, or `None` if the tree is empty.
    pub fn nearest(&self, query: &Point) -> Option<(usize, Point)> {
        self.nearest_k(query, 1).into_iter().next()
    }

    /// The `k` nearest stored entries to `query`, ordered by increasing
    /// distance. Returns fewer than `k` entries if the tree is smaller.
    pub fn nearest_k(&self, query: &Point, k: usize) -> Vec<(usize, Point)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Best-first branch-and-bound using a simple sorted frontier; the
        // trees used here are small (they hold the sample, K ≤ ~1M), so the
        // simplicity is worth more than a fancier priority queue.
        let mut best: Vec<(f64, usize, Point)> = Vec::with_capacity(k + 1);
        let mut worst = f64::INFINITY;
        let mut stack: Vec<&Node> = vec![&self.root];
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf { entries } => {
                    for e in entries {
                        let d2 = e.point.dist2(query);
                        if d2 < worst || best.len() < k {
                            best.push((d2, e.id, e.point));
                            best.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
                            if best.len() > k {
                                best.pop();
                            }
                            if best.len() == k {
                                worst = best[k - 1].0;
                            }
                        }
                    }
                }
                Node::Internal { children } => {
                    for (bb, child) in children {
                        if best.len() < k || bb.dist2_to_point(query) <= worst {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        best.into_iter().map(|(_, id, p)| (id, p)).collect()
    }

    /// Depth of the tree (1 for a tree that is a single leaf). Exposed for
    /// tests and diagnostics.
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Internal { children } => {
                    1 + children.iter().map(|(_, c)| depth(c)).max().unwrap_or(0)
                }
            }
        }
        depth(&self.root)
    }
}

/// The radius-query family (`query_radius`, `query_radius_into`,
/// `for_each_in_radius`) comes from the [`LocalityIndex`] trait; the R-tree
/// supplies only the core visitor traversal. This is the query used by the
/// `ES+Loc` Interchange variant: only sample points within the kernel's
/// effective support take part in the responsibility update.
impl LocalityIndex for RTree {
    fn len(&self) -> usize {
        self.len
    }

    /// Drops every entry; the R-tree has no radius-dependent geometry, so the
    /// hint is ignored.
    fn reset(&mut self, _radius_hint: f64) {
        *self = RTree::new();
    }

    fn insert(&mut self, id: usize, point: Point) {
        RTree::insert(self, id, point);
    }

    fn remove(&mut self, id: usize, point: &Point) -> bool {
        RTree::remove(self, id, point)
    }

    /// Visits entries in deterministic depth-first traversal order, handing
    /// the visitor the squared distance the pruning filter already computed.
    fn for_each_in_radius_with_dist2(
        &self,
        center: &Point,
        radius: f64,
        mut visit: impl FnMut(usize, &Point, f64),
    ) {
        let r2 = radius * radius;
        let region = BoundingBox::new(
            center.x - radius,
            center.y - radius,
            center.x + radius,
            center.y + radius,
        );
        Self::query_radius_rec(&self.root, &region, center, r2, &mut visit);
    }
}

/// Quadratic split of an overflowing leaf's entries.
fn split_leaf(entries: Vec<LeafEntry>) -> (Vec<LeafEntry>, Vec<LeafEntry>) {
    let boxes: Vec<BoundingBox> = entries
        .iter()
        .map(|e| BoundingBox::from_point(&e.point))
        .collect();
    let (seed_a, seed_b) = pick_seeds(&boxes);
    distribute(entries, boxes, seed_a, seed_b)
}

/// A child entry of an internal node: its bounding box plus the subtree.
type ChildEntry = (BoundingBox, Box<Node>);

/// Quadratic split of an overflowing internal node's children.
fn split_internal(children: Vec<ChildEntry>) -> (Vec<ChildEntry>, Vec<ChildEntry>) {
    let boxes: Vec<BoundingBox> = children.iter().map(|(bb, _)| *bb).collect();
    let (seed_a, seed_b) = pick_seeds(&boxes);
    distribute(children, boxes, seed_a, seed_b)
}

/// Guttman's quadratic seed picking: the pair wasting the most area.
fn pick_seeds(boxes: &[BoundingBox]) -> (usize, usize) {
    let mut best = (0, 1);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..boxes.len() {
        for j in (i + 1)..boxes.len() {
            let waste = boxes[i].union(&boxes[j]).area() - boxes[i].area() - boxes[j].area();
            if waste > worst_waste {
                worst_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

/// Distributes items between the two seed groups, preferring the group whose
/// bounding box grows least, while guaranteeing both groups reach
/// `MIN_ENTRIES`.
fn distribute<T>(
    mut items: Vec<T>,
    mut boxes: Vec<BoundingBox>,
    seed_a: usize,
    seed_b: usize,
) -> (Vec<T>, Vec<T>) {
    debug_assert!(seed_a < seed_b);
    let mut group_a = Vec::new();
    let mut group_b = Vec::new();
    // Remove higher index first so the lower index stays valid.
    let item_b = items.swap_remove(seed_b);
    let box_b = boxes.swap_remove(seed_b);
    let item_a = items.swap_remove(seed_a);
    let box_a = boxes.swap_remove(seed_a);
    let mut bb_a = box_a;
    let mut bb_b = box_b;
    group_a.push(item_a);
    group_b.push(item_b);

    while let Some(item) = items.pop() {
        let bb = boxes.pop().expect("boxes parallel to items");
        let remaining = items.len();
        // Force assignment if one group must take the rest to reach the minimum.
        if group_a.len() + remaining < MIN_ENTRIES {
            bb_a = bb_a.union(&bb);
            group_a.push(item);
            continue;
        }
        if group_b.len() + remaining < MIN_ENTRIES {
            bb_b = bb_b.union(&bb);
            group_b.push(item);
            continue;
        }
        let grow_a = bb_a.union(&bb).area() - bb_a.area();
        let grow_b = bb_b.union(&bb).area() - bb_b.area();
        if grow_a < grow_b || (grow_a == grow_b && group_a.len() <= group_b.len()) {
            bb_a = bb_a.union(&bb);
            group_a.push(item);
        } else {
            bb_b = bb_b.union(&bb);
            group_b.push(item);
        }
    }
    (group_a, group_b)
}

/// Node tags in the snapshot encoding.
const SNAP_LEAF: u8 = 0;
const SNAP_INTERNAL: u8 = 1;
/// Decode recursion guard. A fanout-≥2 tree this deep would hold more
/// entries than fit in memory, so a deeper encoding is malformed by
/// construction.
const SNAP_MAX_DEPTH: usize = 64;

/// Checkpoint snapshot codec — see [`crate::snapshot`].
impl RTree {
    /// Serializes the full node tree, **including the stored bounding boxes
    /// verbatim**.
    ///
    /// Boxes are maintained incrementally (`extend` on insert, recompute
    /// only on underflow repair), and future insert descent picks the child
    /// with least enlargement of its *stored* box — so the box bits are load
    /// bearing for determinism and must never be recomputed on restore.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        fn encode(node: &Node, out: &mut Vec<u8>) {
            match node {
                Node::Leaf { entries } => {
                    snapshot::put_u8(out, SNAP_LEAF);
                    snapshot::put_u32(out, entries.len() as u32);
                    for e in entries {
                        snapshot::put_usize(out, e.id);
                        snapshot::put_f64(out, e.point.x);
                        snapshot::put_f64(out, e.point.y);
                        snapshot::put_f64(out, e.point.value);
                    }
                }
                Node::Internal { children } => {
                    snapshot::put_u8(out, SNAP_INTERNAL);
                    snapshot::put_u32(out, children.len() as u32);
                    for (bb, child) in children {
                        snapshot::put_f64(out, bb.min_x);
                        snapshot::put_f64(out, bb.min_y);
                        snapshot::put_f64(out, bb.max_x);
                        snapshot::put_f64(out, bb.max_y);
                        encode(child, out);
                    }
                }
            }
        }
        snapshot::put_usize(out, self.len);
        encode(&self.root, out);
    }

    /// Restores a tree from [`snapshot_into`](Self::snapshot_into) bytes.
    pub fn restore_snapshot(
        r: &mut snapshot::SnapshotReader<'_>,
    ) -> Result<Self, snapshot::SnapshotError> {
        fn decode(
            r: &mut snapshot::SnapshotReader<'_>,
            depth: usize,
            seen: &mut usize,
        ) -> Result<Node, snapshot::SnapshotError> {
            if depth > SNAP_MAX_DEPTH {
                return Err(snapshot::SnapshotError::new(format!(
                    "rtree snapshot deeper than {SNAP_MAX_DEPTH} levels"
                )));
            }
            match r.take_u8("rtree node tag")? {
                SNAP_LEAF => {
                    let n = r.take_u32("rtree leaf entry count")? as usize;
                    if n > MAX_ENTRIES {
                        return Err(snapshot::SnapshotError::new(format!(
                            "rtree leaf holds {n} entries, max is {MAX_ENTRIES}"
                        )));
                    }
                    let mut entries = Vec::with_capacity(n);
                    for _ in 0..n {
                        let id = r.take_usize("rtree leaf entry id")?;
                        let x = r.take_f64("rtree leaf entry x")?;
                        let y = r.take_f64("rtree leaf entry y")?;
                        let value = r.take_f64("rtree leaf entry value")?;
                        entries.push(LeafEntry {
                            id,
                            point: Point::with_value(x, y, value),
                        });
                    }
                    *seen += n;
                    Ok(Node::Leaf { entries })
                }
                SNAP_INTERNAL => {
                    let n = r.take_u32("rtree child count")? as usize;
                    if n == 0 || n > MAX_ENTRIES {
                        return Err(snapshot::SnapshotError::new(format!(
                            "rtree internal node holds {n} children, expected 1..={MAX_ENTRIES}"
                        )));
                    }
                    let mut children = Vec::with_capacity(n);
                    for _ in 0..n {
                        let min_x = r.take_f64("rtree bbox min_x")?;
                        let min_y = r.take_f64("rtree bbox min_y")?;
                        let max_x = r.take_f64("rtree bbox max_x")?;
                        let max_y = r.take_f64("rtree bbox max_y")?;
                        let bb = BoundingBox {
                            min_x,
                            min_y,
                            max_x,
                            max_y,
                        };
                        children.push((bb, Box::new(decode(r, depth + 1, seen)?)));
                    }
                    Ok(Node::Internal { children })
                }
                other => Err(snapshot::SnapshotError::new(format!(
                    "unknown rtree node tag {other}"
                ))),
            }
        }
        let len = r.take_usize("rtree entry count")?;
        let mut seen = 0usize;
        let root = decode(r, 0, &mut seen)?;
        if seen != len {
            return Err(snapshot::SnapshotError::new(format!(
                "rtree snapshot promises {len} entries but encodes {seen}"
            )));
        }
        Ok(Self { root, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
            .collect()
    }

    #[test]
    fn locality_reset_empties_the_tree() {
        let pts = random_points(100, 99);
        let mut t = RTree::from_entries(pts.iter().copied().enumerate());
        LocalityIndex::reset(&mut t, 5.0);
        assert!(t.is_empty());
        t.insert(3, Point::new(1.0, 2.0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.nearest(&Point::new(0.0, 0.0)).is_none());
        assert!(t.query_radius(&Point::new(0.0, 0.0), 10.0).is_empty());
        assert!(t.bounds().is_empty());
    }

    #[test]
    fn insert_and_len() {
        let pts = random_points(500, 1);
        let t = RTree::from_entries(pts.iter().copied().enumerate());
        assert_eq!(t.len(), 500);
        assert!(t.depth() > 1, "tree should have split at 500 entries");
    }

    #[test]
    fn region_query_matches_brute_force() {
        let pts = random_points(1_000, 2);
        let t = RTree::from_entries(pts.iter().copied().enumerate());
        let region = BoundingBox::new(-30.0, -50.0, 20.0, 10.0);
        let mut got: Vec<usize> = t
            .query_region(&region)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| region.contains(p))
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert!(!expected.is_empty(), "test region should not be trivial");
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let pts = random_points(1_000, 3);
        let t = RTree::from_entries(pts.iter().copied().enumerate());
        let center = Point::new(5.0, -5.0);
        for radius in [1.0, 10.0, 40.0] {
            let mut got: Vec<usize> = t
                .query_radius(&center, radius)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            got.sort_unstable();
            let mut expected: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist(&center) <= radius)
                .map(|(i, _)| i)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "radius {radius}");
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(800, 4);
        let t = RTree::from_entries(pts.iter().copied().enumerate());
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let q = Point::new(rng.gen_range(-120.0..120.0), rng.gen_range(-120.0..120.0));
            let (got_id, _) = t.nearest(&q).unwrap();
            let best = pts
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.dist2(&q).partial_cmp(&b.dist2(&q)).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(
                pts[got_id].dist2(&q),
                pts[best].dist2(&q),
                "nearest mismatch at query {q:?}"
            );
        }
    }

    #[test]
    fn nearest_k_is_sorted_and_correct() {
        let pts = random_points(300, 5);
        let t = RTree::from_entries(pts.iter().copied().enumerate());
        let q = Point::new(0.0, 0.0);
        let got = t.nearest_k(&q, 10);
        assert_eq!(got.len(), 10);
        // Sorted by distance.
        for w in got.windows(2) {
            assert!(w[0].1.dist2(&q) <= w[1].1.dist2(&q));
        }
        // Matches brute force distance of the 10th closest.
        let mut dists: Vec<f64> = pts.iter().map(|p| p.dist2(&q)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((got[9].1.dist2(&q) - dists[9]).abs() < 1e-9);
        // Asking for more than exists returns everything.
        assert_eq!(t.nearest_k(&q, 1_000).len(), 300);
        assert!(t.nearest_k(&q, 0).is_empty());
    }

    #[test]
    fn remove_deletes_exactly_one_entry() {
        let pts = random_points(200, 6);
        let mut t = RTree::from_entries(pts.iter().copied().enumerate());
        assert_eq!(t.len(), 200);
        assert!(t.remove(17, &pts[17]));
        assert_eq!(t.len(), 199);
        // Removed id no longer appears in queries.
        let found = t
            .query_radius(&pts[17], 1e-9)
            .iter()
            .any(|(id, _)| *id == 17);
        assert!(!found);
        // Removing again fails.
        assert!(!t.remove(17, &pts[17]));
        assert_eq!(t.len(), 199);
    }

    #[test]
    fn remove_everything_then_reuse() {
        let pts = random_points(150, 7);
        let mut t = RTree::from_entries(pts.iter().copied().enumerate());
        for (i, p) in pts.iter().enumerate() {
            assert!(t.remove(i, p), "failed to remove entry {i}");
        }
        assert!(t.is_empty());
        // Tree is still usable afterwards.
        t.insert(42, Point::new(1.0, 2.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.nearest(&Point::new(0.0, 0.0)).unwrap().0, 42);
    }

    #[test]
    fn interleaved_insert_remove_matches_brute_force() {
        // Simulates the Interchange access pattern: constant insert/remove churn.
        let mut rng = StdRng::seed_from_u64(8);
        let mut t = RTree::new();
        let mut reference: Vec<(usize, Point)> = Vec::new();
        let mut next_id = 0usize;
        for step in 0..2_000 {
            if reference.is_empty() || rng.gen_bool(0.6) {
                let p = Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
                t.insert(next_id, p);
                reference.push((next_id, p));
                next_id += 1;
            } else {
                let idx = rng.gen_range(0..reference.len());
                let (id, p) = reference.swap_remove(idx);
                assert!(t.remove(id, &p), "step {step}: remove failed");
            }
            assert_eq!(t.len(), reference.len(), "length diverged at step {step}");
        }
        // Final consistency check with a radius query.
        let center = Point::new(0.0, 0.0);
        let mut got: Vec<usize> = t
            .query_radius(&center, 25.0)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = reference
            .iter()
            .filter(|(_, p)| p.dist(&center) <= 25.0)
            .map(|(id, _)| *id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    proptest::proptest! {
        /// Radius queries agree with brute force for arbitrary point sets and
        /// query parameters.
        #[test]
        fn radius_query_matches_brute_force_prop(
            pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..200),
            qx in -120.0f64..120.0,
            qy in -120.0f64..120.0,
            radius in 0.1f64..80.0,
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let tree = RTree::from_entries(points.iter().copied().enumerate());
            let q = Point::new(qx, qy);
            let mut got: Vec<usize> =
                tree.query_radius(&q, radius).into_iter().map(|(id, _)| id).collect();
            got.sort_unstable();
            let mut expected: Vec<usize> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist(&q) <= radius)
                .map(|(i, _)| i)
                .collect();
            expected.sort_unstable();
            proptest::prop_assert_eq!(got, expected);
        }

        /// After removing an arbitrary subset of entries, the tree contains
        /// exactly the remaining ones.
        #[test]
        fn removal_leaves_exactly_the_remaining_entries(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..120),
            removal_mask in proptest::collection::vec(proptest::bool::ANY, 1..120),
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mut tree = RTree::from_entries(points.iter().copied().enumerate());
            let mut kept = Vec::new();
            for (i, p) in points.iter().enumerate() {
                if removal_mask.get(i).copied().unwrap_or(false) {
                    proptest::prop_assert!(tree.remove(i, p));
                } else {
                    kept.push(i);
                }
            }
            proptest::prop_assert_eq!(tree.len(), kept.len());
            let mut found: Vec<usize> = tree
                .query_region(&BoundingBox::new(-60.0, -60.0, 60.0, 60.0))
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            found.sort_unstable();
            proptest::prop_assert_eq!(found, kept);
        }
    }

    #[test]
    fn query_radius_into_and_visitor_match_the_allocating_query() {
        let pts = random_points(1_000, 11);
        let t = RTree::from_entries(pts.iter().copied().enumerate());
        let center = Point::new(-3.0, 8.0);
        let mut buf = Vec::new();
        for radius in [0.5, 12.0, 60.0] {
            let allocated = t.query_radius(&center, radius);
            // Buffer form: identical contents in identical order, and the
            // buffer is cleared between calls.
            t.query_radius_into(&center, radius, &mut buf);
            assert_eq!(buf, allocated, "radius {radius}");
            // Visitor form: same sequence again.
            let mut visited = Vec::new();
            t.for_each_in_radius(&center, radius, |id, p| visited.push((id, *p)));
            assert_eq!(visited, allocated, "radius {radius}");
        }
    }

    #[test]
    fn query_radius_into_reuses_buffer_capacity() {
        let pts = random_points(300, 12);
        let t = RTree::from_entries(pts.iter().copied().enumerate());
        let mut buf = Vec::new();
        t.query_radius_into(&Point::new(0.0, 0.0), 200.0, &mut buf);
        assert_eq!(buf.len(), 300);
        let cap = buf.capacity();
        // A smaller follow-up query must not shrink or reallocate the buffer.
        t.query_radius_into(&Point::new(0.0, 0.0), 1.0, &mut buf);
        assert!(buf.len() < 300);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn duplicate_points_are_supported() {
        let p = Point::new(1.0, 1.0);
        let mut t = RTree::new();
        for id in 0..20 {
            t.insert(id, p);
        }
        assert_eq!(t.len(), 20);
        assert_eq!(t.query_radius(&p, 0.1).len(), 20);
        assert!(t.remove(7, &p));
        assert_eq!(t.len(), 19);
    }
}
