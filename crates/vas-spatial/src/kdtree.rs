//! A static k-d tree for nearest-neighbour queries.
//!
//! Section V of the paper adds *density embedding* to VAS: after the sample
//! is chosen, a second scan over the full dataset increments a counter on the
//! sampled point nearest to each scanned tuple. The paper notes a k-d tree
//! makes this second pass `O(N log K)`. This module provides that structure:
//! built once over the (small) sample, queried `N` times.
//!
//! The tree is constructed by recursive median splits, which guarantees a
//! balanced tree regardless of the input distribution.

use vas_data::{BoundingBox, Point};

#[derive(Debug, Clone)]
struct KdNode {
    /// Index into the `entries` array of the point stored at this node.
    entry: usize,
    /// Split axis: 0 for x, 1 for y.
    axis: u8,
    left: Option<Box<KdNode>>,
    right: Option<Box<KdNode>>,
}

/// A balanced, static k-d tree over `(id, Point)` entries.
#[derive(Debug, Clone)]
pub struct KdTree {
    entries: Vec<(usize, Point)>,
    root: Option<Box<KdNode>>,
}

impl KdTree {
    /// Builds a tree from `(id, point)` pairs. Building is `O(n log² n)`.
    pub fn build(entries: impl IntoIterator<Item = (usize, Point)>) -> Self {
        let entries: Vec<(usize, Point)> = entries.into_iter().collect();
        let mut indices: Vec<usize> = (0..entries.len()).collect();
        let root = Self::build_rec(&entries, &mut indices, 0);
        Self { entries, root }
    }

    /// Builds a tree over a slice of points, using each point's position in
    /// the slice as its id.
    pub fn from_points(points: &[Point]) -> Self {
        Self::build(points.iter().copied().enumerate())
    }

    fn build_rec(
        entries: &[(usize, Point)],
        indices: &mut [usize],
        depth: usize,
    ) -> Option<Box<KdNode>> {
        if indices.is_empty() {
            return None;
        }
        let axis = (depth % 2) as u8;
        indices.sort_by(|&a, &b| {
            let (pa, pb) = (&entries[a].1, &entries[b].1);
            let (ka, kb) = if axis == 0 {
                (pa.x, pb.x)
            } else {
                (pa.y, pb.y)
            };
            ka.partial_cmp(&kb).expect("finite coordinates")
        });
        let mid = indices.len() / 2;
        let entry = indices[mid];
        let (left_idx, rest) = indices.split_at_mut(mid);
        let right_idx = &mut rest[1..];
        Some(Box::new(KdNode {
            entry,
            axis,
            left: Self::build_rec(entries, left_idx, depth + 1),
            right: Self::build_rec(entries, right_idx, depth + 1),
        }))
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The id and point of the entry nearest to `query`, or `None` when empty.
    pub fn nearest(&self, query: &Point) -> Option<(usize, Point)> {
        let root = self.root.as_ref()?;
        let mut best = (f64::INFINITY, 0usize);
        self.nearest_rec(root, query, &mut best);
        let (id, p) = self.entries[best.1];
        Some((id, p))
    }

    fn nearest_rec(&self, node: &KdNode, query: &Point, best: &mut (f64, usize)) {
        let point = &self.entries[node.entry].1;
        let d2 = point.dist2(query);
        if d2 < best.0 {
            *best = (d2, node.entry);
        }
        let diff = if node.axis == 0 {
            query.x - point.x
        } else {
            query.y - point.y
        };
        let (near, far) = if diff <= 0.0 {
            (&node.left, &node.right)
        } else {
            (&node.right, &node.left)
        };
        if let Some(n) = near {
            self.nearest_rec(n, query, best);
        }
        // Only descend the far side if the splitting plane is closer than the
        // best distance found so far.
        if diff * diff < best.0 {
            if let Some(f) = far {
                self.nearest_rec(f, query, best);
            }
        }
    }

    /// All entries within Euclidean distance `radius` of `query`.
    ///
    /// Thin wrapper over [`query_radius_into`](Self::query_radius_into); hot
    /// paths should use the buffer or visitor form to avoid the per-call
    /// allocation.
    pub fn query_radius(&self, query: &Point, radius: f64) -> Vec<(usize, Point)> {
        let mut out = Vec::new();
        self.query_radius_into(query, radius, &mut out);
        out
    }

    /// Writes all entries within `radius` of `query` into `out`, clearing it
    /// first. The buffer's capacity is retained across calls, so a reused
    /// buffer makes the query allocation-free in the steady state.
    ///
    /// Entries are produced in the same order as [`query_radius`](Self::query_radius).
    pub fn query_radius_into(&self, query: &Point, radius: f64, out: &mut Vec<(usize, Point)>) {
        out.clear();
        self.for_each_in_radius(query, radius, |id, p| out.push((id, *p)));
    }

    /// Calls `visit(id, point)` for every entry within Euclidean distance
    /// `radius` of `query`, in the same deterministic traversal order as
    /// [`query_radius`](Self::query_radius), without allocating.
    pub fn for_each_in_radius(
        &self,
        query: &Point,
        radius: f64,
        mut visit: impl FnMut(usize, &Point),
    ) {
        if let Some(root) = self.root.as_ref() {
            self.radius_rec(root, query, radius, radius * radius, &mut visit);
        }
    }

    fn radius_rec(
        &self,
        node: &KdNode,
        query: &Point,
        radius: f64,
        r2: f64,
        visit: &mut impl FnMut(usize, &Point),
    ) {
        let (id, point) = self.entries[node.entry];
        if point.dist2(query) <= r2 {
            visit(id, &point);
        }
        let diff = if node.axis == 0 {
            query.x - point.x
        } else {
            query.y - point.y
        };
        let (near, far) = if diff <= 0.0 {
            (&node.left, &node.right)
        } else {
            (&node.right, &node.left)
        };
        if let Some(n) = near {
            self.radius_rec(n, query, radius, r2, visit);
        }
        if diff.abs() <= radius {
            if let Some(f) = far {
                self.radius_rec(f, query, radius, r2, visit);
            }
        }
    }

    /// Bounding box of all stored points.
    pub fn bounds(&self) -> BoundingBox {
        let mut bb = BoundingBox::EMPTY;
        for (_, p) in &self.entries {
            bb.extend(p);
        }
        bb
    }

    /// Depth of the tree; a balanced tree over `n` entries has depth
    /// `⌈log2(n+1)⌉`. Exposed for tests and diagnostics.
    pub fn depth(&self) -> usize {
        fn depth(node: &Option<Box<KdNode>>) -> usize {
            match node {
                None => 0,
                Some(n) => 1 + depth(&n.left).max(depth(&n.right)),
            }
        }
        depth(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::from_points(&[]);
        assert!(t.is_empty());
        assert!(t.nearest(&Point::new(0.0, 0.0)).is_none());
        assert!(t.query_radius(&Point::new(0.0, 0.0), 1.0).is_empty());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn single_point() {
        let t = KdTree::from_points(&[Point::new(3.0, 4.0)]);
        assert_eq!(t.len(), 1);
        let (id, p) = t.nearest(&Point::new(0.0, 0.0)).unwrap();
        assert_eq!(id, 0);
        assert_eq!(p, Point::new(3.0, 4.0));
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(1_000, 1);
        let t = KdTree::from_points(&pts);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let q = Point::new(rng.gen_range(-12.0..12.0), rng.gen_range(-12.0..12.0));
            let (got, _) = t.nearest(&q).unwrap();
            let best = pts
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.dist2(&q).partial_cmp(&b.dist2(&q)).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            assert!(
                (pts[got].dist2(&q) - pts[best].dist2(&q)).abs() < 1e-12,
                "nearest mismatch"
            );
        }
    }

    #[test]
    fn radius_matches_brute_force() {
        let pts = random_points(500, 3);
        let t = KdTree::from_points(&pts);
        let q = Point::new(1.0, -1.0);
        for radius in [0.5, 2.0, 8.0] {
            let mut got: Vec<usize> = t
                .query_radius(&q, radius)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            got.sort_unstable();
            let mut expected: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist(&q) <= radius)
                .map(|(i, _)| i)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "radius {radius}");
        }
    }

    #[test]
    fn query_radius_into_and_visitor_match_the_allocating_query() {
        let pts = random_points(600, 9);
        let t = KdTree::from_points(&pts);
        let q = Point::new(2.0, 3.0);
        let mut buf = Vec::new();
        for radius in [0.3, 2.5, 15.0] {
            let allocated = t.query_radius(&q, radius);
            t.query_radius_into(&q, radius, &mut buf);
            assert_eq!(buf, allocated, "radius {radius}");
            let mut visited = Vec::new();
            t.for_each_in_radius(&q, radius, |id, p| visited.push((id, *p)));
            assert_eq!(visited, allocated, "radius {radius}");
        }
    }

    #[test]
    fn tree_is_balanced() {
        let pts = random_points(1_024, 4);
        let t = KdTree::from_points(&pts);
        // A perfectly balanced tree over 1024 nodes has depth 11; allow +1 slack.
        assert!(t.depth() <= 12, "depth {} too large", t.depth());
    }

    #[test]
    fn balanced_even_for_sorted_input() {
        let pts: Vec<Point> = (0..1_000).map(|i| Point::new(i as f64, 0.0)).collect();
        let t = KdTree::from_points(&pts);
        assert!(t.depth() <= 11, "depth {} on sorted input", t.depth());
    }

    #[test]
    fn custom_ids_are_preserved() {
        let t = KdTree::build(vec![
            (100, Point::new(0.0, 0.0)),
            (200, Point::new(5.0, 5.0)),
        ]);
        assert_eq!(t.nearest(&Point::new(4.0, 4.0)).unwrap().0, 200);
        assert_eq!(t.nearest(&Point::new(1.0, 0.0)).unwrap().0, 100);
    }

    #[test]
    fn duplicate_points_all_returned_by_radius_query() {
        let pts = vec![Point::new(1.0, 1.0); 10];
        let t = KdTree::from_points(&pts);
        assert_eq!(t.query_radius(&Point::new(1.0, 1.0), 0.01).len(), 10);
    }

    #[test]
    fn bounds_cover_all_points() {
        let pts = random_points(100, 5);
        let t = KdTree::from_points(&pts);
        let bb = t.bounds();
        for p in &pts {
            assert!(bb.contains(p));
        }
    }
}
