//! A balanced k-d tree with a small dynamic overlay.
//!
//! Section V of the paper adds *density embedding* to VAS: after the sample
//! is chosen, a second scan over the full dataset increments a counter on the
//! sampled point nearest to each scanned tuple. The paper notes a k-d tree
//! makes this second pass `O(N log K)`. That static workload — built once
//! over the (small) sample, queried `N` times — is this module's sweet spot.
//!
//! The tree is constructed by recursive median splits, which guarantees a
//! balanced tree regardless of the input distribution.
//!
//! To serve as a [`LocalityIndex`] backend for the Interchange loop (which
//! needs insert/remove churn), the tree carries a classic dynamic overlay:
//! removals mark **tombstones** (the node keeps splitting the space but no
//! longer reports its entry), insertions go to a linear **overflow buffer**
//! scanned after every tree traversal, and once the overlay grows past a
//! fraction of the live size the tree is **compacted** — rebuilt from the
//! live entries. Queries stay correct at every moment; the rebuild schedule
//! only affects the constant factor.

use crate::{snapshot, LocalityIndex};
use vas_data::{BoundingBox, Point};

#[derive(Debug, Clone)]
struct KdNode {
    /// Index into the `entries` array of the point stored at this node.
    entry: usize,
    /// Split axis: 0 for x, 1 for y.
    axis: u8,
    left: Option<Box<KdNode>>,
    right: Option<Box<KdNode>>,
}

/// A balanced k-d tree over `(id, Point)` entries with tombstone deletion
/// and an overflow buffer for insertions (compacted automatically).
#[derive(Debug, Clone, Default)]
pub struct KdTree {
    entries: Vec<(usize, Point)>,
    root: Option<Box<KdNode>>,
    /// Tombstone flags, parallel to `entries`.
    removed: Vec<bool>,
    removed_count: usize,
    /// Entries inserted since the last compaction, scanned linearly.
    overflow: Vec<(usize, Point)>,
}

impl KdTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a tree from `(id, point)` pairs. Building is `O(n log² n)`.
    pub fn build(entries: impl IntoIterator<Item = (usize, Point)>) -> Self {
        let entries: Vec<(usize, Point)> = entries.into_iter().collect();
        let mut indices: Vec<usize> = (0..entries.len()).collect();
        let root = Self::build_rec(&entries, &mut indices, 0);
        let removed = vec![false; entries.len()];
        Self {
            entries,
            root,
            removed,
            removed_count: 0,
            overflow: Vec::new(),
        }
    }

    /// Builds a tree over a slice of points, using each point's position in
    /// the slice as its id.
    pub fn from_points(points: &[Point]) -> Self {
        Self::build(points.iter().copied().enumerate())
    }

    fn build_rec(
        entries: &[(usize, Point)],
        indices: &mut [usize],
        depth: usize,
    ) -> Option<Box<KdNode>> {
        if indices.is_empty() {
            return None;
        }
        let axis = (depth % 2) as u8;
        indices.sort_by(|&a, &b| {
            let (pa, pb) = (&entries[a].1, &entries[b].1);
            let (ka, kb) = if axis == 0 {
                (pa.x, pb.x)
            } else {
                (pa.y, pb.y)
            };
            ka.partial_cmp(&kb).expect("finite coordinates")
        });
        let mid = indices.len() / 2;
        let entry = indices[mid];
        let (left_idx, rest) = indices.split_at_mut(mid);
        let right_idx = &mut rest[1..];
        Some(Box::new(KdNode {
            entry,
            axis,
            left: Self::build_rec(entries, left_idx, depth + 1),
            right: Self::build_rec(entries, right_idx, depth + 1),
        }))
    }

    /// Number of stored (live) entries.
    pub fn len(&self) -> usize {
        self.entries.len() - self.removed_count + self.overflow.len()
    }

    /// `true` if the tree holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries awaiting integration into the tree structure (diagnostics).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Appends an entry to the overflow buffer, compacting the tree when the
    /// overlay (tombstones + overflow) outgrows its budget. O(1) amortized
    /// plus the scheduled rebuilds.
    pub fn insert(&mut self, id: usize, point: Point) {
        self.overflow.push((id, point));
        self.maybe_compact();
    }

    /// Removes one live entry matching `(id, point)` exactly: a tree entry is
    /// tombstoned, an overflow entry is dropped in place. Returns `true` if
    /// an entry was removed. The tree half is an `O(log K)` descent along the
    /// same splitting planes the build used (both sides are explored only on
    /// coordinate ties).
    pub fn remove(&mut self, id: usize, point: &Point) -> bool {
        let found = match self.root.as_ref() {
            Some(root) => self.find_entry(root, id, point),
            None => None,
        };
        if let Some(pos) = found {
            self.removed[pos] = true;
            self.removed_count += 1;
            self.maybe_compact();
            return true;
        }
        if let Some(pos) = self
            .overflow
            .iter()
            .position(|(eid, ep)| *eid == id && ep == point)
        {
            self.overflow.remove(pos);
            return true;
        }
        false
    }

    /// Locates a live tree entry matching `(id, point)` exactly, descending
    /// by the splitting planes: the median build puts strictly-smaller keys
    /// left and strictly-larger keys right, so only equal keys require
    /// visiting both subtrees.
    fn find_entry(&self, node: &KdNode, id: usize, point: &Point) -> Option<usize> {
        let (eid, ep) = self.entries[node.entry];
        if !self.removed[node.entry] && eid == id && ep == *point {
            return Some(node.entry);
        }
        let (pc, nc) = if node.axis == 0 {
            (point.x, ep.x)
        } else {
            (point.y, ep.y)
        };
        if pc <= nc {
            if let Some(found) = node
                .left
                .as_ref()
                .and_then(|n| self.find_entry(n, id, point))
            {
                return Some(found);
            }
        }
        if pc >= nc {
            if let Some(found) = node
                .right
                .as_ref()
                .and_then(|n| self.find_entry(n, id, point))
            {
                return Some(found);
            }
        }
        None
    }

    /// Rebuilds the tree from the live entries once the overlay exceeds a
    /// quarter of the live size (with a floor so small trees don't thrash).
    fn maybe_compact(&mut self) {
        let live = self.len();
        if self.removed_count + self.overflow.len() > (live / 4).max(32) {
            self.compact();
        }
    }

    /// Immediately rebuilds the balanced tree from the live entries (tree
    /// order first, then overflow order).
    pub fn compact(&mut self) {
        let mut live: Vec<(usize, Point)> = Vec::with_capacity(self.len());
        for (i, e) in self.entries.iter().enumerate() {
            if !self.removed[i] {
                live.push(*e);
            }
        }
        live.append(&mut self.overflow);
        *self = Self::build(live);
    }

    /// The id and point of the live entry nearest to `query`, or `None` when
    /// empty.
    pub fn nearest(&self, query: &Point) -> Option<(usize, Point)> {
        let mut best: Option<(f64, usize, Point)> = None;
        if let Some(root) = self.root.as_ref() {
            self.nearest_rec(root, query, &mut best);
        }
        for &(id, p) in &self.overflow {
            let d2 = p.dist2(query);
            if best.map(|(bd2, _, _)| d2 < bd2).unwrap_or(true) {
                best = Some((d2, id, p));
            }
        }
        best.map(|(_, id, p)| (id, p))
    }

    fn nearest_rec(&self, node: &KdNode, query: &Point, best: &mut Option<(f64, usize, Point)>) {
        let (id, point) = self.entries[node.entry];
        if !self.removed[node.entry] {
            let d2 = point.dist2(query);
            if best.map(|(bd2, _, _)| d2 < bd2).unwrap_or(true) {
                *best = Some((d2, id, point));
            }
        }
        let diff = if node.axis == 0 {
            query.x - point.x
        } else {
            query.y - point.y
        };
        let (near, far) = if diff <= 0.0 {
            (&node.left, &node.right)
        } else {
            (&node.right, &node.left)
        };
        if let Some(n) = near {
            self.nearest_rec(n, query, best);
        }
        // Only descend the far side if the splitting plane is closer than the
        // best distance found so far.
        if best.map(|(bd2, _, _)| diff * diff < bd2).unwrap_or(true) {
            if let Some(f) = far {
                self.nearest_rec(f, query, best);
            }
        }
    }

    fn radius_rec(
        &self,
        node: &KdNode,
        query: &Point,
        radius: f64,
        r2: f64,
        visit: &mut impl FnMut(usize, &Point, f64),
    ) {
        let (id, point) = self.entries[node.entry];
        if !self.removed[node.entry] {
            let d2 = point.dist2(query);
            if d2 <= r2 {
                visit(id, &point, d2);
            }
        }
        let diff = if node.axis == 0 {
            query.x - point.x
        } else {
            query.y - point.y
        };
        let (near, far) = if diff <= 0.0 {
            (&node.left, &node.right)
        } else {
            (&node.right, &node.left)
        };
        if let Some(n) = near {
            self.radius_rec(n, query, radius, r2, visit);
        }
        if diff.abs() <= radius {
            if let Some(f) = far {
                self.radius_rec(f, query, radius, r2, visit);
            }
        }
    }

    /// Bounding box of all live points.
    pub fn bounds(&self) -> BoundingBox {
        let mut bb = BoundingBox::EMPTY;
        for (i, (_, p)) in self.entries.iter().enumerate() {
            if !self.removed[i] {
                bb.extend(p);
            }
        }
        for (_, p) in &self.overflow {
            bb.extend(p);
        }
        bb
    }

    /// Depth of the tree; a balanced tree over `n` entries has depth
    /// `⌈log2(n+1)⌉`. Exposed for tests and diagnostics.
    pub fn depth(&self) -> usize {
        fn depth(node: &Option<Box<KdNode>>) -> usize {
            match node {
                None => 0,
                Some(n) => 1 + depth(&n.left).max(depth(&n.right)),
            }
        }
        depth(&self.root)
    }
}

/// The radius-query family (`query_radius`, `query_radius_into`,
/// `for_each_in_radius`) comes from the [`LocalityIndex`] trait; the k-d tree
/// supplies only the core visitor traversal.
impl LocalityIndex for KdTree {
    fn len(&self) -> usize {
        KdTree::len(self)
    }

    /// Drops every entry; the k-d tree has no radius-dependent geometry, so
    /// the hint is ignored.
    fn reset(&mut self, _radius_hint: f64) {
        *self = KdTree::new();
    }

    fn insert(&mut self, id: usize, point: Point) {
        KdTree::insert(self, id, point);
    }

    fn remove(&mut self, id: usize, point: &Point) -> bool {
        KdTree::remove(self, id, point)
    }

    /// Visits live tree entries in deterministic depth-first traversal order,
    /// then the overflow buffer in insertion order.
    fn for_each_in_radius_with_dist2(
        &self,
        query: &Point,
        radius: f64,
        mut visit: impl FnMut(usize, &Point, f64),
    ) {
        let r2 = radius * radius;
        if let Some(root) = self.root.as_ref() {
            self.radius_rec(root, query, radius, r2, &mut visit);
        }
        for &(id, ref p) in &self.overflow {
            let d2 = p.dist2(query);
            if d2 <= r2 {
                visit(id, p, d2);
            }
        }
    }
}

/// Checkpoint snapshot codec — see [`crate::snapshot`].
impl KdTree {
    /// Serializes the tree: the entries array (tombstoned slots included),
    /// the tombstone bitmap, and the overflow buffer — all verbatim.
    ///
    /// The node structure is **not** stored: the median build is a pure
    /// deterministic function of the entries array (stable sort on
    /// coordinates), so [`restore_snapshot`](Self::restore_snapshot) rebuilds
    /// an identical tree. Preserving the raw entries/overflow split (rather
    /// than the live set) matters because the compaction schedule — and with
    /// it, the traversal order after future churn — depends on it.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        snapshot::put_usize(out, self.entries.len());
        for &(id, ref p) in &self.entries {
            snapshot::put_usize(out, id);
            snapshot::put_f64(out, p.x);
            snapshot::put_f64(out, p.y);
            snapshot::put_f64(out, p.value);
        }
        for &dead in &self.removed {
            snapshot::put_u8(out, dead as u8);
        }
        snapshot::put_usize(out, self.overflow.len());
        for &(id, ref p) in &self.overflow {
            snapshot::put_usize(out, id);
            snapshot::put_f64(out, p.x);
            snapshot::put_f64(out, p.y);
            snapshot::put_f64(out, p.value);
        }
    }

    /// Restores a tree from [`snapshot_into`](Self::snapshot_into) bytes,
    /// rebuilding the node structure from the entries array.
    pub fn restore_snapshot(
        r: &mut snapshot::SnapshotReader<'_>,
    ) -> Result<Self, snapshot::SnapshotError> {
        let take_entries = |r: &mut snapshot::SnapshotReader<'_>,
                            n: usize,
                            what: &str|
         -> Result<Vec<(usize, Point)>, snapshot::SnapshotError> {
            let mut entries = Vec::with_capacity(n.min(1 << 20));
            for i in 0..n {
                let id = r.take_usize(what)?;
                let x = r.take_f64(what)?;
                let y = r.take_f64(what)?;
                let value = r.take_f64(what)?;
                if !x.is_finite() || !y.is_finite() {
                    return Err(snapshot::SnapshotError::new(format!(
                        "{what} {i} has non-finite coordinates ({x}, {y})"
                    )));
                }
                entries.push((id, Point::with_value(x, y, value)));
            }
            Ok(entries)
        };
        let n = r.take_usize("kdtree entry count")?;
        let entries = take_entries(r, n, "kdtree entry")?;
        let mut removed = Vec::with_capacity(n.min(1 << 20));
        let mut removed_count = 0usize;
        for i in 0..n {
            match r.take_u8("kdtree tombstone flag")? {
                0 => removed.push(false),
                1 => {
                    removed.push(true);
                    removed_count += 1;
                }
                other => {
                    return Err(snapshot::SnapshotError::new(format!(
                        "kdtree tombstone flag {i} is {other}, expected 0 or 1"
                    )))
                }
            }
        }
        let n_overflow = r.take_usize("kdtree overflow count")?;
        let overflow = take_entries(r, n_overflow, "kdtree overflow entry")?;
        let mut indices: Vec<usize> = (0..entries.len()).collect();
        let root = Self::build_rec(&entries, &mut indices, 0);
        Ok(Self {
            entries,
            root,
            removed,
            removed_count,
            overflow,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::from_points(&[]);
        assert!(t.is_empty());
        assert!(t.nearest(&Point::new(0.0, 0.0)).is_none());
        assert!(t.query_radius(&Point::new(0.0, 0.0), 1.0).is_empty());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn single_point() {
        let t = KdTree::from_points(&[Point::new(3.0, 4.0)]);
        assert_eq!(t.len(), 1);
        let (id, p) = t.nearest(&Point::new(0.0, 0.0)).unwrap();
        assert_eq!(id, 0);
        assert_eq!(p, Point::new(3.0, 4.0));
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(1_000, 1);
        let t = KdTree::from_points(&pts);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let q = Point::new(rng.gen_range(-12.0..12.0), rng.gen_range(-12.0..12.0));
            let (got, _) = t.nearest(&q).unwrap();
            let best = pts
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.dist2(&q).partial_cmp(&b.dist2(&q)).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            assert!(
                (pts[got].dist2(&q) - pts[best].dist2(&q)).abs() < 1e-12,
                "nearest mismatch"
            );
        }
    }

    #[test]
    fn radius_matches_brute_force() {
        let pts = random_points(500, 3);
        let t = KdTree::from_points(&pts);
        let q = Point::new(1.0, -1.0);
        for radius in [0.5, 2.0, 8.0] {
            let mut got: Vec<usize> = t
                .query_radius(&q, radius)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            got.sort_unstable();
            let mut expected: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist(&q) <= radius)
                .map(|(i, _)| i)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "radius {radius}");
        }
    }

    #[test]
    fn query_radius_into_and_visitor_match_the_allocating_query() {
        let pts = random_points(600, 9);
        let t = KdTree::from_points(&pts);
        let q = Point::new(2.0, 3.0);
        let mut buf = Vec::new();
        for radius in [0.3, 2.5, 15.0] {
            let allocated = t.query_radius(&q, radius);
            t.query_radius_into(&q, radius, &mut buf);
            assert_eq!(buf, allocated, "radius {radius}");
            let mut visited = Vec::new();
            t.for_each_in_radius(&q, radius, |id, p| visited.push((id, *p)));
            assert_eq!(visited, allocated, "radius {radius}");
        }
    }

    #[test]
    fn tree_is_balanced() {
        let pts = random_points(1_024, 4);
        let t = KdTree::from_points(&pts);
        // A perfectly balanced tree over 1024 nodes has depth 11; allow +1 slack.
        assert!(t.depth() <= 12, "depth {} too large", t.depth());
    }

    #[test]
    fn balanced_even_for_sorted_input() {
        let pts: Vec<Point> = (0..1_000).map(|i| Point::new(i as f64, 0.0)).collect();
        let t = KdTree::from_points(&pts);
        assert!(t.depth() <= 11, "depth {} on sorted input", t.depth());
    }

    #[test]
    fn custom_ids_are_preserved() {
        let t = KdTree::build(vec![
            (100, Point::new(0.0, 0.0)),
            (200, Point::new(5.0, 5.0)),
        ]);
        assert_eq!(t.nearest(&Point::new(4.0, 4.0)).unwrap().0, 200);
        assert_eq!(t.nearest(&Point::new(1.0, 0.0)).unwrap().0, 100);
    }

    #[test]
    fn duplicate_points_all_returned_by_radius_query() {
        let pts = vec![Point::new(1.0, 1.0); 10];
        let t = KdTree::from_points(&pts);
        assert_eq!(t.query_radius(&Point::new(1.0, 1.0), 0.01).len(), 10);
    }

    #[test]
    fn bounds_cover_all_points() {
        let pts = random_points(100, 5);
        let t = KdTree::from_points(&pts);
        let bb = t.bounds();
        for p in &pts {
            assert!(bb.contains(p));
        }
    }

    #[test]
    fn removal_tombstones_hide_entries_everywhere() {
        let pts = random_points(200, 6);
        let mut t = KdTree::from_points(&pts);
        assert!(t.remove(17, &pts[17]));
        assert_eq!(t.len(), 199);
        // Tombstoned entries vanish from every query family.
        assert!(!t
            .query_radius(&pts[17], 1e-9)
            .iter()
            .any(|(id, _)| *id == 17));
        let (nid, _) = t.nearest(&pts[17]).unwrap();
        assert_ne!(nid, 17);
        // Removing again fails.
        assert!(!t.remove(17, &pts[17]));
    }

    #[test]
    fn inserted_entries_are_visible_before_and_after_compaction() {
        let pts = random_points(100, 7);
        let mut t = KdTree::from_points(&pts);
        t.insert(500, Point::new(0.1, 0.2));
        assert!(t.overflow_len() > 0);
        assert!(t
            .query_radius(&Point::new(0.1, 0.2), 1e-6)
            .iter()
            .any(|(id, _)| *id == 500));
        assert_eq!(t.nearest(&Point::new(0.1, 0.2)).unwrap().0, 500);
        t.compact();
        assert_eq!(t.overflow_len(), 0);
        assert!(t
            .query_radius(&Point::new(0.1, 0.2), 1e-6)
            .iter()
            .any(|(id, _)| *id == 500));
    }

    #[test]
    fn interleaved_insert_remove_matches_brute_force() {
        // The Interchange access pattern: constant insert/remove churn
        // crossing many automatic compactions.
        let mut rng = StdRng::seed_from_u64(8);
        let mut t = KdTree::new();
        let mut reference: Vec<(usize, Point)> = Vec::new();
        let mut next_id = 0usize;
        for step in 0..2_000 {
            if reference.is_empty() || rng.gen_bool(0.6) {
                let p = Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
                t.insert(next_id, p);
                reference.push((next_id, p));
                next_id += 1;
            } else {
                let idx = rng.gen_range(0..reference.len());
                let (id, p) = reference.swap_remove(idx);
                assert!(t.remove(id, &p), "step {step}: remove failed");
            }
            assert_eq!(t.len(), reference.len(), "length diverged at step {step}");
        }
        let center = Point::new(0.0, 0.0);
        let mut got: Vec<usize> = t
            .query_radius(&center, 25.0)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = reference
            .iter()
            .filter(|(_, p)| p.dist(&center) <= 25.0)
            .map(|(id, _)| *id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        // Churn kept the overlay bounded, so the tree is still balanced-ish.
        assert!(t.overflow_len() <= (t.len() / 4).max(32) + 1);
    }

    #[test]
    fn grow_from_empty_via_inserts_only() {
        let mut t = KdTree::new();
        for i in 0..300 {
            t.insert(i, Point::new((i % 17) as f64, (i % 23) as f64));
        }
        assert_eq!(t.len(), 300);
        // Compaction has integrated most entries into the balanced tree.
        assert!(t.overflow_len() < 300);
        let all = t.query_radius(&Point::new(8.0, 11.0), 1_000.0);
        assert_eq!(all.len(), 300);
    }
}
