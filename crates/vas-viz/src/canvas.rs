//! An RGB bitmap canvas with PPM export and an ASCII preview.

use crate::color::Color;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A fixed-size RGB raster.
#[derive(Debug, Clone, PartialEq)]
pub struct Canvas {
    width: usize,
    height: usize,
    pixels: Vec<Color>,
}

impl Canvas {
    /// Creates a canvas filled with `background`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, background: Color) -> Self {
        assert!(
            width > 0 && height > 0,
            "canvas dimensions must be positive"
        );
        Self {
            width,
            height,
            pixels: vec![background; width * height],
        }
    }

    /// Creates a white canvas.
    pub fn white(width: usize, height: usize) -> Self {
        Self::new(width, height, Color::WHITE)
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The color at `(x, y)`; row 0 is the top of the image.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn get(&self, x: usize, y: usize) -> Color {
        assert!(x < self.width && y < self.height, "pixel out of range");
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`, silently ignoring out-of-range writes
    /// (points on the border of a viewport may rasterize one pixel outside).
    pub fn set(&mut self, x: isize, y: isize, color: Color) {
        if x < 0 || y < 0 {
            return;
        }
        let (x, y) = (x as usize, y as usize);
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = color;
        }
    }

    /// Draws a filled disc of the given pixel radius centred at `(cx, cy)`.
    /// Radius 0 paints the single centre pixel.
    pub fn fill_circle(&mut self, cx: isize, cy: isize, radius: isize, color: Color) {
        if radius <= 0 {
            self.set(cx, cy, color);
            return;
        }
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                if dx * dx + dy * dy <= radius * radius {
                    self.set(cx + dx, cy + dy, color);
                }
            }
        }
    }

    /// Number of pixels that differ from `background` — a crude "ink" measure
    /// used by tests and by the perception models.
    pub fn ink(&self, background: Color) -> usize {
        self.pixels.iter().filter(|&&c| c != background).count()
    }

    /// Fraction of non-background pixels inside the rectangle
    /// `[x0, x1) × [y0, y1)` (clamped to the canvas).
    pub fn ink_fraction_in_rect(
        &self,
        background: Color,
        x0: usize,
        y0: usize,
        x1: usize,
        y1: usize,
    ) -> f64 {
        let x1 = x1.min(self.width);
        let y1 = y1.min(self.height);
        if x0 >= x1 || y0 >= y1 {
            return 0.0;
        }
        let mut inked = 0usize;
        for y in y0..y1 {
            for x in x0..x1 {
                if self.get(x, y) != background {
                    inked += 1;
                }
            }
        }
        inked as f64 / ((x1 - x0) * (y1 - y0)) as f64
    }

    /// Writes the canvas as a binary PPM (P6) file.
    pub fn write_ppm(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        writeln!(w, "P6\n{} {}\n255", self.width, self.height)?;
        let mut bytes = Vec::with_capacity(self.pixels.len() * 3);
        for p in &self.pixels {
            bytes.extend_from_slice(&[p.r, p.g, p.b]);
        }
        w.write_all(&bytes)?;
        w.flush()
    }

    /// Renders a small ASCII preview (darker pixels become denser glyphs).
    /// `cols` sets the preview width; the aspect ratio is preserved assuming
    /// terminal glyphs are roughly twice as tall as wide.
    pub fn ascii_preview(&self, cols: usize) -> String {
        let cols = cols.max(1).min(self.width);
        let rows = ((self.height * cols) / (self.width * 2)).max(1);
        let glyphs = [' ', '.', ':', '+', '*', '#', '@'];
        let mut out = String::with_capacity((cols + 1) * rows);
        for row in 0..rows {
            for col in 0..cols {
                // Average darkness of the pixel block mapped to this glyph.
                let x0 = col * self.width / cols;
                let x1 = ((col + 1) * self.width / cols).max(x0 + 1);
                let y0 = row * self.height / rows;
                let y1 = ((row + 1) * self.height / rows).max(y0 + 1);
                let mut darkness = 0.0;
                let mut n = 0usize;
                for y in y0..y1.min(self.height) {
                    for x in x0..x1.min(self.width) {
                        let c = self.get(x, y);
                        darkness += 1.0 - (c.r as f64 + c.g as f64 + c.b as f64) / (3.0 * 255.0);
                        n += 1;
                    }
                }
                let level = if n == 0 { 0.0 } else { darkness / n as f64 };
                let idx =
                    ((level * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1);
                out.push(glyphs[idx]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_canvas_is_background() {
        let c = Canvas::white(10, 5);
        assert_eq!(c.width(), 10);
        assert_eq!(c.height(), 5);
        assert_eq!(c.get(3, 2), Color::WHITE);
        assert_eq!(c.ink(Color::WHITE), 0);
    }

    #[test]
    fn set_and_get() {
        let mut c = Canvas::white(4, 4);
        c.set(1, 2, Color::BLACK);
        assert_eq!(c.get(1, 2), Color::BLACK);
        assert_eq!(c.ink(Color::WHITE), 1);
        // Out-of-range writes are ignored.
        c.set(-1, 0, Color::BLACK);
        c.set(100, 100, Color::BLACK);
        assert_eq!(c.ink(Color::WHITE), 1);
    }

    #[test]
    fn fill_circle_paints_a_disc() {
        let mut c = Canvas::white(21, 21);
        c.fill_circle(10, 10, 3, Color::BLACK);
        // Roughly π r² ≈ 28 pixels, allow the integer-lattice wiggle.
        let ink = c.ink(Color::WHITE);
        assert!((25..=40).contains(&ink), "disc ink {ink}");
        assert_eq!(c.get(10, 10), Color::BLACK);
        assert_eq!(c.get(10, 13), Color::BLACK);
        assert_eq!(c.get(10, 14), Color::WHITE);
        // Radius 0 paints exactly one pixel.
        let mut c0 = Canvas::white(5, 5);
        c0.fill_circle(2, 2, 0, Color::BLACK);
        assert_eq!(c0.ink(Color::WHITE), 1);
    }

    #[test]
    fn circles_clip_at_the_border() {
        let mut c = Canvas::white(10, 10);
        c.fill_circle(0, 0, 3, Color::BLACK);
        assert!(c.ink(Color::WHITE) > 0);
        assert_eq!(c.get(0, 0), Color::BLACK);
    }

    #[test]
    fn ink_fraction_in_rect() {
        let mut c = Canvas::white(10, 10);
        for x in 0..5 {
            c.set(x, 0, Color::BLACK);
        }
        assert!((c.ink_fraction_in_rect(Color::WHITE, 0, 0, 10, 1) - 0.5).abs() < 1e-12);
        assert_eq!(c.ink_fraction_in_rect(Color::WHITE, 0, 5, 10, 10), 0.0);
        assert_eq!(c.ink_fraction_in_rect(Color::WHITE, 5, 5, 5, 9), 0.0);
    }

    #[test]
    fn ppm_round_trip_header() {
        let mut c = Canvas::white(3, 2);
        c.set(0, 0, Color::new(10, 20, 30));
        let path = std::env::temp_dir().join(format!("vas-viz-{}.ppm", std::process::id()));
        c.write_ppm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header = String::from_utf8_lossy(&bytes[..11]);
        assert!(header.starts_with("P6\n3 2\n255"));
        // 3×2 pixels × 3 bytes after the header.
        assert_eq!(bytes.len(), 11 + 18);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ascii_preview_shape_and_content() {
        let mut c = Canvas::white(80, 40);
        for y in 0..40isize {
            for x in 0..40isize {
                c.set(x, y, Color::BLACK);
            }
        }
        let art = c.ascii_preview(40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10); // 40 cols → height 40*40/(80*2)=10
        assert!(lines[0].starts_with('@'));
        assert!(lines[0].ends_with(' '));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_size_rejected() {
        let _ = Canvas::white(0, 10);
    }

    #[test]
    #[should_panic(expected = "pixel out of range")]
    fn get_out_of_range_panics() {
        let c = Canvas::white(2, 2);
        let _ = c.get(2, 0);
    }
}
