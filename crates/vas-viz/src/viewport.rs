//! The viewport: mapping data coordinates to pixel coordinates.
//!
//! A viewport couples a data-space rectangle (what the user is looking at)
//! with a pixel-space canvas size. Zooming and panning produce new viewports;
//! the renderer only ever consumes the final transform. The y axis is flipped
//! so larger data-y values appear towards the top of the image, matching
//! conventional plot orientation.

use vas_data::{BoundingBox, Point};

/// A data-space window rendered onto a `width × height` pixel canvas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    region: BoundingBox,
    width: usize,
    height: usize,
}

impl Viewport {
    /// Creates a viewport showing `region` on a `width × height` canvas.
    ///
    /// # Panics
    /// Panics if the region is empty/degenerate or a dimension is zero.
    pub fn new(region: BoundingBox, width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0,
            "viewport dimensions must be positive"
        );
        assert!(
            !region.is_empty() && region.width() > 0.0 && region.height() > 0.0,
            "viewport region must have positive area"
        );
        Self {
            region,
            width,
            height,
        }
    }

    /// A viewport covering the bounding box of `points`, padded by 2% so
    /// border points do not land exactly on the canvas edge.
    ///
    /// # Panics
    /// Panics if `points` is empty or degenerate (all identical).
    pub fn fit(points: &[Point], width: usize, height: usize) -> Self {
        let bounds = BoundingBox::from_points(points);
        assert!(!bounds.is_empty(), "cannot fit a viewport to no points");
        let pad = (bounds.diagonal() * 0.02).max(1e-9);
        Self::new(bounds.padded(pad), width, height)
    }

    /// The data-space region shown.
    pub fn region(&self) -> BoundingBox {
        self.region
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Maps a data point to (possibly out-of-canvas) pixel coordinates.
    /// Row 0 is the top of the image.
    pub fn to_pixel(&self, p: &Point) -> (isize, isize) {
        let fx = (p.x - self.region.min_x) / self.region.width();
        let fy = (p.y - self.region.min_y) / self.region.height();
        let x = (fx * (self.width - 1) as f64).round() as isize;
        let y = ((1.0 - fy) * (self.height - 1) as f64).round() as isize;
        (x, y)
    }

    /// Maps pixel coordinates back to the data-space location of the pixel
    /// centre.
    pub fn to_data(&self, x: usize, y: usize) -> Point {
        let fx = x as f64 / (self.width - 1).max(1) as f64;
        let fy = 1.0 - y as f64 / (self.height - 1).max(1) as f64;
        Point::new(
            self.region.min_x + fx * self.region.width(),
            self.region.min_y + fy * self.region.height(),
        )
    }

    /// Is this data point visible in the viewport?
    pub fn contains(&self, p: &Point) -> bool {
        self.region.contains(p)
    }

    /// A new viewport zoomed by `factor` (>1 zooms in) around `center`
    /// (data coordinates), keeping the canvas size.
    ///
    /// # Panics
    /// Panics if `factor` is not positive.
    pub fn zoomed(&self, center: &Point, factor: f64) -> Viewport {
        assert!(factor > 0.0, "zoom factor must be positive");
        let w = self.region.width() / factor;
        let h = self.region.height() / factor;
        Viewport::new(
            BoundingBox::new(
                center.x - w / 2.0,
                center.y - h / 2.0,
                center.x + w / 2.0,
                center.y + h / 2.0,
            ),
            self.width,
            self.height,
        )
    }

    /// A new viewport translated by `(dx, dy)` in data coordinates.
    pub fn panned(&self, dx: f64, dy: f64) -> Viewport {
        Viewport::new(
            BoundingBox::new(
                self.region.min_x + dx,
                self.region.min_y + dy,
                self.region.max_x + dx,
                self.region.max_y + dy,
            ),
            self.width,
            self.height,
        )
    }

    /// Data-space area covered by one pixel.
    pub fn pixel_area(&self) -> f64 {
        self.region.area() / (self.width * self.height) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viewport() -> Viewport {
        Viewport::new(BoundingBox::new(0.0, 0.0, 10.0, 20.0), 101, 201)
    }

    #[test]
    fn corners_map_to_canvas_corners() {
        let v = viewport();
        assert_eq!(v.to_pixel(&Point::new(0.0, 0.0)), (0, 200)); // bottom-left
        assert_eq!(v.to_pixel(&Point::new(10.0, 20.0)), (100, 0)); // top-right
        assert_eq!(v.to_pixel(&Point::new(5.0, 10.0)), (50, 100)); // centre
    }

    #[test]
    fn to_data_inverts_to_pixel() {
        let v = viewport();
        for &(x, y) in &[(0usize, 0usize), (50, 100), (100, 200), (33, 77)] {
            let p = v.to_data(x, y);
            assert_eq!(v.to_pixel(&p), (x as isize, y as isize));
        }
    }

    #[test]
    fn out_of_region_points_map_outside_canvas() {
        let v = viewport();
        let (x, _) = v.to_pixel(&Point::new(-5.0, 5.0));
        assert!(x < 0);
        assert!(!v.contains(&Point::new(-5.0, 5.0)));
        assert!(v.contains(&Point::new(5.0, 5.0)));
    }

    #[test]
    fn fit_covers_all_points() {
        let pts = vec![
            Point::new(-3.0, 2.0),
            Point::new(7.0, -1.0),
            Point::new(0.0, 9.0),
        ];
        let v = Viewport::fit(&pts, 100, 100);
        for p in &pts {
            assert!(v.contains(p));
            let (x, y) = v.to_pixel(p);
            assert!((0..100).contains(&x) && (0..100).contains(&y));
        }
    }

    #[test]
    fn zoom_shrinks_the_region_around_the_center() {
        let v = viewport();
        let z = v.zoomed(&Point::new(5.0, 10.0), 4.0);
        assert!((z.region().width() - 2.5).abs() < 1e-12);
        assert!((z.region().height() - 5.0).abs() < 1e-12);
        assert_eq!(z.region().center(), Point::new(5.0, 10.0));
        assert_eq!(z.width(), v.width());
        // Zooming out grows the region.
        let out = v.zoomed(&Point::new(5.0, 10.0), 0.5);
        assert!(out.region().width() > v.region().width());
    }

    #[test]
    fn pan_translates_the_region() {
        let v = viewport();
        let p = v.panned(1.0, -2.0);
        assert_eq!(p.region().min_x, 1.0);
        assert_eq!(p.region().max_y, 18.0);
    }

    #[test]
    fn pixel_area_scales_with_zoom() {
        let v = viewport();
        let z = v.zoomed(&Point::new(5.0, 10.0), 2.0);
        assert!((v.pixel_area() / z.pixel_area() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn empty_region_rejected() {
        let _ = Viewport::new(BoundingBox::EMPTY, 10, 10);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn fit_requires_points() {
        let _ = Viewport::fit(&[], 10, 10);
    }
}
