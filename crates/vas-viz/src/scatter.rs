//! The scatter / map plot renderer.
//!
//! Renders a set of points onto a [`Canvas`] through a [`Viewport`]. Three
//! aspects of the paper's plots are covered:
//!
//! * plain scatter plots (fixed dot size, fixed color),
//! * map plots (dot color encodes the point's `value`, e.g. altitude — as in
//!   Figure 1), and
//! * the **density re-encoding** of Section V: when a sample carries density
//!   counters, dot size (and optionally jitter) is scaled with the counter so
//!   that density information survives the spreading effect of VAS.

use crate::canvas::Canvas;
use crate::color::{Color, Colormap};
use crate::viewport::Viewport;
use vas_data::Point;
use vas_sampling::Sample;

/// How dot size is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeEncoding {
    /// Every dot uses the base radius.
    Fixed,
    /// Dot radius grows with the square root of the density counter (so dot
    /// area tracks represented mass), normalized so the largest counter maps
    /// to `max_radius`. This is the paper's "larger legend size" density
    /// embedding.
    ByDensity {
        /// Radius used for the largest density counter.
        max_radius: u32,
    },
}

/// Density re-encoding through jitter noise: extra dots are scattered around
/// each sampled point in proportion to its density counter — the alternative
/// re-encoding the paper suggests alongside dot size ("some jitter noise can
/// be used to provide additional density in the plot").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitterEncoding {
    /// Maximum number of extra dots drawn for the highest density counter.
    pub max_extra_dots: u32,
    /// Maximum pixel offset of an extra dot from its sampled point.
    pub max_offset_px: u32,
}

/// Rendering style for a scatter/map plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlotStyle {
    /// Base dot radius in pixels (0 = single pixel).
    pub radius: u32,
    /// Dot color used when no colormap is configured.
    pub color: Color,
    /// When set, dot color encodes `Point::value` through this colormap.
    pub colormap: Option<Colormap>,
    /// Dot-size encoding.
    pub size: SizeEncoding,
    /// Optional jitter-based density re-encoding (applied only when density
    /// counters are available).
    pub jitter: Option<JitterEncoding>,
    /// Canvas background color.
    pub background: Color,
}

impl Default for PlotStyle {
    fn default() -> Self {
        Self {
            radius: 1,
            color: Color::new(31, 119, 180),
            colormap: None,
            size: SizeEncoding::Fixed,
            jitter: None,
            background: Color::WHITE,
        }
    }
}

impl PlotStyle {
    /// A map-plot style: value-encoded color (viridis), single-pixel dots.
    pub fn map_plot() -> Self {
        Self {
            radius: 0,
            colormap: Some(Colormap::Viridis),
            ..Self::default()
        }
    }

    /// A density-encoded style used for "VAS with density embedding" plots.
    pub fn density_plot(max_radius: u32) -> Self {
        Self {
            radius: 0,
            size: SizeEncoding::ByDensity { max_radius },
            ..Self::default()
        }
    }

    /// The jitter-noise variant of density embedding: dot size stays fixed
    /// and local density is restored by scattering extra dots around each
    /// sampled point.
    pub fn jitter_plot(max_extra_dots: u32, max_offset_px: u32) -> Self {
        Self {
            radius: 0,
            jitter: Some(JitterEncoding {
                max_extra_dots,
                max_offset_px,
            }),
            ..Self::default()
        }
    }
}

/// The renderer. Stateless apart from the style; reusable across frames.
#[derive(Debug, Clone)]
pub struct ScatterRenderer {
    style: PlotStyle,
}

impl ScatterRenderer {
    /// Creates a renderer with the given style.
    pub fn new(style: PlotStyle) -> Self {
        Self { style }
    }

    /// Creates a renderer with the default scatter style.
    pub fn default_style() -> Self {
        Self::new(PlotStyle::default())
    }

    /// The configured style.
    pub fn style(&self) -> &PlotStyle {
        &self.style
    }

    /// Renders raw points (no density information) into a new canvas.
    pub fn render_points(&self, points: &[Point], viewport: &Viewport) -> Canvas {
        self.render_with_densities(points, None, viewport)
    }

    /// Renders a [`Sample`], using its density counters when present and the
    /// style asks for density encoding.
    pub fn render_sample(&self, sample: &Sample, viewport: &Viewport) -> Canvas {
        self.render_with_densities(&sample.points, sample.densities.as_deref(), viewport)
    }

    /// Core rendering routine.
    pub fn render_with_densities(
        &self,
        points: &[Point],
        densities: Option<&[u64]>,
        viewport: &Viewport,
    ) -> Canvas {
        let mut canvas = Canvas::new(viewport.width(), viewport.height(), self.style.background);

        // Value range for the colormap (visible points only, so zoomed views
        // re-normalize color the way interactive tools do).
        let (lo, hi) = match self.style.colormap {
            Some(_) => value_range(points, viewport),
            None => (0.0, 0.0),
        };
        // Density normalization for size encoding.
        let max_density = densities
            .map(|d| d.iter().copied().max().unwrap_or(1).max(1))
            .unwrap_or(1);

        for (i, p) in points.iter().enumerate() {
            if !viewport.contains(p) {
                continue;
            }
            let (x, y) = viewport.to_pixel(p);
            let color = match self.style.colormap {
                Some(cm) => cm.map_range(p.value, lo, hi),
                None => self.style.color,
            };
            let radius = match self.style.size {
                SizeEncoding::Fixed => self.style.radius as isize,
                SizeEncoding::ByDensity { max_radius } => {
                    let d = densities.and_then(|d| d.get(i)).copied().unwrap_or(1);
                    density_radius(d, max_density, self.style.radius, max_radius)
                }
            };
            canvas.fill_circle(x, y, radius, color);

            // Jitter re-encoding: scatter extra dots proportional to density.
            if let (Some(jitter), Some(densities)) = (self.style.jitter, densities) {
                let d = densities.get(i).copied().unwrap_or(1);
                let extra = jitter_dot_count(d, max_density, jitter.max_extra_dots);
                let mut state = splitmix64(i as u64 + 1);
                for _ in 0..extra {
                    state = splitmix64(state);
                    let off = jitter.max_offset_px.max(1) as i64;
                    let dx = (state % (2 * off as u64 + 1)) as i64 - off;
                    state = splitmix64(state);
                    let dy = (state % (2 * off as u64 + 1)) as i64 - off;
                    canvas.fill_circle(x + dx as isize, y + dy as isize, radius, color);
                }
            }
        }
        canvas
    }
}

/// Number of extra jitter dots for a density counter: proportional to the
/// square root of the counter (same perceptual rationale as dot area),
/// normalized so the largest counter gets `max_extra` dots.
fn jitter_dot_count(density: u64, max_density: u64, max_extra: u32) -> u32 {
    let frac = (density as f64).sqrt() / (max_density as f64).sqrt().max(1e-12);
    (frac * max_extra as f64).round() as u32
}

/// SplitMix64: a tiny deterministic PRNG so jitter placement is reproducible
/// without a dependency on the `rand` crate in the rendering hot path.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Radius for a density counter.
///
/// The dot *area* should be proportional to the number of original tuples the
/// dot represents so that perceived mass tracks true density, hence the
/// radius grows with the square root of the counter, normalized so the
/// largest counter maps to `max_radius`.
fn density_radius(density: u64, max_density: u64, base: u32, max_radius: u32) -> isize {
    let d = (density as f64).sqrt();
    let dmax = (max_density as f64).sqrt().max(1e-12);
    let extra = (d / dmax) * max_radius.saturating_sub(base) as f64;
    (base as f64 + extra).round() as isize
}

/// Min/max `value` among the points visible in the viewport.
fn value_range(points: &[Point], viewport: &Viewport) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for p in points {
        if viewport.contains(p) {
            lo = lo.min(p.value);
            hi = hi.max(p.value);
        }
    }
    if lo > hi {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::BoundingBox;

    fn viewport() -> Viewport {
        Viewport::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 100, 100)
    }

    #[test]
    fn renders_visible_points_only() {
        let r = ScatterRenderer::default_style();
        let points = vec![
            Point::new(5.0, 5.0),
            Point::new(50.0, 50.0), // outside the viewport
        ];
        let canvas = r.render_points(&points, &viewport());
        assert!(canvas.ink(Color::WHITE) > 0);
        // A single radius-1 dot paints at most ~5 pixels; the far point adds
        // nothing.
        assert!(canvas.ink(Color::WHITE) <= 9);
    }

    #[test]
    fn more_points_means_more_ink() {
        let r = ScatterRenderer::default_style();
        let few: Vec<Point> = (0..5).map(|i| Point::new(i as f64, i as f64)).collect();
        let many: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
            .collect();
        let v = viewport();
        assert!(
            r.render_points(&many, &v).ink(Color::WHITE)
                > r.render_points(&few, &v).ink(Color::WHITE)
        );
    }

    #[test]
    fn colormap_encodes_value() {
        let style = PlotStyle::map_plot();
        let r = ScatterRenderer::new(style);
        let points = vec![
            Point::with_value(2.0, 5.0, 0.0),
            Point::with_value(8.0, 5.0, 100.0),
        ];
        let v = viewport();
        let canvas = r.render_points(&points, &v);
        let (x_lo, y_lo) = v.to_pixel(&points[0]);
        let (x_hi, y_hi) = v.to_pixel(&points[1]);
        let c_lo = canvas.get(x_lo as usize, y_lo as usize);
        let c_hi = canvas.get(x_hi as usize, y_hi as usize);
        assert_ne!(c_lo, c_hi, "different values must get different colors");
        assert_eq!(c_lo, Colormap::Viridis.map(0.0));
        assert_eq!(c_hi, Colormap::Viridis.map(1.0));
    }

    #[test]
    fn density_encoding_scales_dot_size() {
        let style = PlotStyle {
            radius: 1,
            size: SizeEncoding::ByDensity { max_radius: 6 },
            ..PlotStyle::default()
        };
        let r = ScatterRenderer::new(style);
        let v = viewport();
        let points = vec![Point::new(3.0, 3.0), Point::new(7.0, 7.0)];
        let sample = Sample::new("vas", 2, points).with_densities(vec![1, 1_000]);
        let canvas = r.render_sample(&sample, &v);
        // Compare ink near each dot: the high-density dot must be larger.
        let (x1, y1) = v.to_pixel(&sample.points[0]);
        let (x2, y2) = v.to_pixel(&sample.points[1]);
        let ink_around = |canvas: &Canvas, x: isize, y: isize| {
            canvas.ink_fraction_in_rect(
                Color::WHITE,
                (x - 8).max(0) as usize,
                (y - 8).max(0) as usize,
                (x + 8) as usize,
                (y + 8) as usize,
            )
        };
        assert!(ink_around(&canvas, x2, y2) > 2.0 * ink_around(&canvas, x1, y1));
    }

    #[test]
    fn density_radius_is_monotone_and_bounded() {
        let max_density = 10_000;
        let mut prev = 0isize;
        for d in [1u64, 10, 100, 1_000, 10_000] {
            let r = density_radius(d, max_density, 1, 8);
            assert!(r >= prev);
            assert!(r <= 8);
            prev = r;
        }
        assert_eq!(density_radius(max_density, max_density, 1, 8), 8);
    }

    #[test]
    fn zoomed_view_of_sparse_sample_is_empty() {
        // The Figure 1 phenomenon: a sample with no points in a region renders
        // an empty plot when zoomed into that region.
        let r = ScatterRenderer::default_style();
        let points = vec![Point::new(1.0, 1.0)];
        let zoomed = Viewport::new(BoundingBox::new(8.0, 8.0, 9.0, 9.0), 50, 50);
        let canvas = r.render_points(&points, &zoomed);
        assert_eq!(canvas.ink(Color::WHITE), 0);
    }

    #[test]
    fn jitter_encoding_adds_ink_in_dense_areas() {
        let style = PlotStyle::jitter_plot(12, 5);
        let r = ScatterRenderer::new(style);
        let v = viewport();
        let points = vec![Point::new(3.0, 3.0), Point::new(7.0, 7.0)];
        let sample = Sample::new("vas", 2, points).with_densities(vec![1, 2_000]);
        let canvas = r.render_sample(&sample, &v);
        let ink_around = |x: isize, y: isize| {
            canvas.ink_fraction_in_rect(
                Color::WHITE,
                (x - 7).max(0) as usize,
                (y - 7).max(0) as usize,
                (x + 7) as usize,
                (y + 7) as usize,
            )
        };
        let (x1, y1) = v.to_pixel(&sample.points[0]);
        let (x2, y2) = v.to_pixel(&sample.points[1]);
        assert!(
            ink_around(x2, y2) > 2.0 * ink_around(x1, y1),
            "dense point should be surrounded by more jitter ink"
        );
        // Deterministic across renders.
        let again = ScatterRenderer::new(style).render_sample(&sample, &v);
        assert_eq!(canvas, again);
    }

    #[test]
    fn jitter_without_densities_is_a_plain_scatter() {
        let style = PlotStyle::jitter_plot(12, 5);
        let r = ScatterRenderer::new(style);
        let plain = PlotStyle {
            radius: 0,
            ..PlotStyle::default()
        };
        let v = viewport();
        let points = vec![Point::new(2.0, 2.0), Point::new(8.0, 3.0)];
        let with_jitter_style = r.render_points(&points, &v);
        let without = ScatterRenderer::new(plain).render_points(&points, &v);
        assert_eq!(
            with_jitter_style.ink(Color::WHITE),
            without.ink(Color::WHITE)
        );
    }

    #[test]
    fn jitter_dot_count_is_monotone_and_capped() {
        let mut prev = 0;
        for d in [1u64, 10, 100, 1_000, 10_000] {
            let n = jitter_dot_count(d, 10_000, 20);
            assert!(n >= prev);
            assert!(n <= 20);
            prev = n;
        }
        assert_eq!(jitter_dot_count(10_000, 10_000, 20), 20);
    }

    #[test]
    fn value_range_ignores_invisible_points() {
        let v = viewport();
        let pts = vec![
            Point::with_value(5.0, 5.0, 10.0),
            Point::with_value(500.0, 500.0, 9999.0),
        ];
        assert_eq!(value_range(&pts, &v), (10.0, 10.0));
        assert_eq!(value_range(&[], &v), (0.0, 0.0));
    }
}
