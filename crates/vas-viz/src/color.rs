//! Colors and colormaps for value (altitude) encoding in map plots.

use serde::{Deserialize, Serialize};

/// An 8-bit RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Opaque black.
    pub const BLACK: Color = Color { r: 0, g: 0, b: 0 };
    /// Opaque white.
    pub const WHITE: Color = Color {
        r: 255,
        g: 255,
        b: 255,
    };

    /// Creates a color from channel values.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Self { r, g, b }
    }

    /// Linear interpolation between two colors (`t` clamped to `[0, 1]`).
    pub fn lerp(a: Color, b: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |x: u8, y: u8| (x as f64 + (y as f64 - x as f64) * t).round() as u8;
        Color::new(mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b))
    }

    /// Perceived luminance in `[0, 1]` (Rec. 601 weights).
    pub fn luminance(&self) -> f64 {
        (0.299 * self.r as f64 + 0.587 * self.g as f64 + 0.114 * self.b as f64) / 255.0
    }
}

/// A piecewise-linear colormap from a normalized value in `[0, 1]` to a color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Colormap {
    /// Blue → green → yellow ramp (viridis-like), good default for altitude.
    Viridis,
    /// Dark blue → light blue ramp.
    Blues,
    /// Black → red → yellow ramp.
    Heat,
    /// Greyscale ramp (white at 0, black at 1).
    Greys,
}

impl Colormap {
    /// Maps a normalized value (`t` clamped to `[0, 1]`) to a color.
    pub fn map(&self, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let stops: &[Color] = match self {
            Colormap::Viridis => &[
                Color::new(68, 1, 84),
                Color::new(59, 82, 139),
                Color::new(33, 145, 140),
                Color::new(94, 201, 98),
                Color::new(253, 231, 37),
            ],
            Colormap::Blues => &[Color::new(8, 48, 107), Color::new(198, 219, 239)],
            Colormap::Heat => &[
                Color::new(0, 0, 0),
                Color::new(200, 30, 30),
                Color::new(255, 220, 50),
            ],
            Colormap::Greys => &[Color::WHITE, Color::BLACK],
        };
        let segments = stops.len() - 1;
        let scaled = t * segments as f64;
        let idx = (scaled.floor() as usize).min(segments - 1);
        Color::lerp(stops[idx], stops[idx + 1], scaled - idx as f64)
    }

    /// Maps a raw value given the value range `[lo, hi]`; degenerate ranges
    /// map everything to the midpoint color.
    pub fn map_range(&self, value: f64, lo: f64, hi: f64) -> Color {
        if hi <= lo {
            return self.map(0.5);
        }
        self.map((value - lo) / (hi - lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints_and_midpoint() {
        assert_eq!(Color::lerp(Color::BLACK, Color::WHITE, 0.0), Color::BLACK);
        assert_eq!(Color::lerp(Color::BLACK, Color::WHITE, 1.0), Color::WHITE);
        assert_eq!(
            Color::lerp(Color::BLACK, Color::WHITE, 0.5),
            Color::new(128, 128, 128)
        );
        // Clamped outside [0, 1].
        assert_eq!(Color::lerp(Color::BLACK, Color::WHITE, 5.0), Color::WHITE);
    }

    #[test]
    fn luminance_ordering() {
        assert!(Color::WHITE.luminance() > Color::new(128, 128, 128).luminance());
        assert!(Color::new(128, 128, 128).luminance() > Color::BLACK.luminance());
        assert_eq!(Color::BLACK.luminance(), 0.0);
        assert!((Color::WHITE.luminance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn colormaps_cover_their_endpoints() {
        for cm in [
            Colormap::Viridis,
            Colormap::Blues,
            Colormap::Heat,
            Colormap::Greys,
        ] {
            let lo = cm.map(0.0);
            let hi = cm.map(1.0);
            assert_ne!(lo, hi, "{cm:?} endpoints should differ");
            // Values outside [0,1] clamp.
            assert_eq!(cm.map(-1.0), lo);
            assert_eq!(cm.map(2.0), hi);
        }
    }

    #[test]
    fn greys_is_monotone_in_darkness() {
        let mut prev = Colormap::Greys.map(0.0).luminance();
        for i in 1..=10 {
            let l = Colormap::Greys.map(i as f64 / 10.0).luminance();
            assert!(l <= prev);
            prev = l;
        }
    }

    #[test]
    fn map_range_handles_degenerate_ranges() {
        let cm = Colormap::Heat;
        assert_eq!(cm.map_range(5.0, 3.0, 3.0), cm.map(0.5));
        assert_eq!(cm.map_range(0.0, 0.0, 10.0), cm.map(0.0));
        assert_eq!(cm.map_range(10.0, 0.0, 10.0), cm.map(1.0));
    }
}
