//! # vas-viz
//!
//! A software scatter/map-plot renderer and the latency model used by the
//! experiment harness.
//!
//! The paper measures visualization latency with Tableau and MathGL
//! (Figures 2 and 4) and renders its user-study stimuli with a conventional
//! plotting stack. Neither is available to this reproduction, so this crate
//! implements the substitute: a deterministic rasterizer that turns a set of
//! points into an RGB bitmap given a viewport, with the same qualitative
//! properties that matter to the experiments —
//!
//! * rendering cost grows **linearly** with the number of points drawn
//!   (the premise of Figure 2), and
//! * what a viewer can see is exactly what lands on the canvas: zooming into
//!   a sparse region of a poor sample produces a visibly empty plot
//!   (the premise of Figure 1 and of the user study).
//!
//! Components:
//!
//! * [`canvas`] — RGB bitmap with PPM export and ASCII preview.
//! * [`viewport`] — data-space ⇄ pixel-space transform, zoom and pan.
//! * [`color`] — colormaps for value (altitude) encoding.
//! * [`scatter`] — the scatter/map plot renderer, including the density
//!   re-encoding (dot size / jitter) of the paper's Section V extension.
//! * [`latency`] — a calibrated linear latency model standing in for the
//!   Tableau / MathGL measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canvas;
pub mod color;
pub mod latency;
pub mod scatter;
pub mod viewport;

pub use canvas::Canvas;
pub use color::{Color, Colormap};
pub use latency::LatencyModel;
pub use scatter::{JitterEncoding, PlotStyle, ScatterRenderer, SizeEncoding};
pub use viewport::Viewport;
