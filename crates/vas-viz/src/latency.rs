//! The visualization latency model.
//!
//! Figures 2 and 4 of the paper measure how long Tableau and MathGL take to
//! produce a scatter plot as a function of the number of rendered tuples and
//! find an essentially **linear** relationship (plus a fixed setup cost),
//! crossing the 2-second "interactive limit" somewhere below one million
//! tuples. Figure 8(b) then converts sample sizes into visualization time
//! using that relationship.
//!
//! This reproduction cannot run Tableau, so [`LatencyModel`] provides the
//! substitute: `time(n) = fixed_overhead + n × per_tuple_cost`. The model can
//! either be constructed from published-order-of-magnitude constants
//! ([`LatencyModel::tableau_like`], [`LatencyModel::mathgl_like`]) or
//! **calibrated** against this crate's own rasterizer by timing real renders
//! ([`LatencyModel::calibrate`]), which is what the Figure 2/4 harness does.

use crate::scatter::ScatterRenderer;
use crate::viewport::Viewport;
use std::time::{Duration, Instant};
use vas_data::Point;

/// A linear visualization-latency model: `time(n) = overhead + n · per_tuple`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed setup cost (query dispatch, axis layout, window creation…).
    pub overhead: Duration,
    /// Marginal cost of fetching + rendering one tuple.
    pub per_tuple: Duration,
    /// Human-readable label for reports ("tableau-like", "rasterizer", …).
    pub label: &'static str,
}

impl LatencyModel {
    /// A model with the rough constants of the paper's Tableau measurements
    /// (≈ 4 minutes for 50M in-memory tuples, ≈ 2 s of fixed overhead).
    pub fn tableau_like() -> Self {
        Self {
            overhead: Duration::from_millis(2_000),
            per_tuple: Duration::from_nanos(4_800),
            label: "tableau-like",
        }
    }

    /// A model with the rough constants of the paper's MathGL measurements
    /// (lighter-weight C++ library: smaller overhead, ≈ 1 µs per tuple
    /// including SSD I/O).
    pub fn mathgl_like() -> Self {
        Self {
            overhead: Duration::from_millis(300),
            per_tuple: Duration::from_nanos(1_100),
            label: "mathgl-like",
        }
    }

    /// Calibrates a model against this crate's rasterizer by rendering
    /// `calibration_sizes` synthetic point sets and fitting the linear model
    /// through the two extreme measurements.
    pub fn calibrate(
        renderer: &ScatterRenderer,
        viewport: &Viewport,
        calibration_sizes: &[usize],
    ) -> Self {
        assert!(
            calibration_sizes.len() >= 2,
            "calibration needs at least two sizes"
        );
        let mut sizes = calibration_sizes.to_vec();
        sizes.sort_unstable();
        let measure = |n: usize| -> Duration {
            let region = viewport.region();
            let points: Vec<Point> = (0..n)
                .map(|i| {
                    // Low-discrepancy-ish deterministic fill of the viewport.
                    let t = i as f64 + 0.5;
                    Point::new(
                        region.min_x + (t * 0.754_877_666).fract() * region.width(),
                        region.min_y + (t * 0.569_840_291).fract() * region.height(),
                    )
                })
                .collect();
            let start = Instant::now();
            let canvas = renderer.render_points(&points, viewport);
            let elapsed = start.elapsed();
            std::hint::black_box(canvas.ink(crate::color::Color::WHITE));
            elapsed
        };
        let n_lo = sizes[0];
        let n_hi = sizes[sizes.len() - 1];
        let t_lo = measure(n_lo);
        let t_hi = measure(n_hi);
        let span = (n_hi - n_lo).max(1) as f64;
        let per_tuple_secs = ((t_hi.as_secs_f64() - t_lo.as_secs_f64()) / span).max(1e-12);
        let overhead_secs = (t_lo.as_secs_f64() - per_tuple_secs * n_lo as f64).max(0.0);
        Self {
            overhead: Duration::from_secs_f64(overhead_secs),
            per_tuple: Duration::from_secs_f64(per_tuple_secs),
            label: "rasterizer",
        }
    }

    /// Predicted time to visualize `n` tuples.
    pub fn time_for(&self, n: usize) -> Duration {
        self.overhead + Duration::from_secs_f64(self.per_tuple.as_secs_f64() * n as f64)
    }

    /// Largest tuple count that can be visualized within `budget`
    /// (0 if even the fixed overhead exceeds the budget).
    ///
    /// This is the conversion the paper describes in Section I: "VAS chooses
    /// an appropriate sample size by converting the specified time bound into
    /// the number of tuples that can likely be processed within that bound."
    pub fn tuples_within(&self, budget: Duration) -> usize {
        if budget <= self.overhead {
            return 0;
        }
        let available = (budget - self.overhead).as_secs_f64();
        (available / self.per_tuple.as_secs_f64().max(1e-15)).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter::PlotStyle;
    use vas_data::BoundingBox;

    #[test]
    fn time_is_linear_in_tuple_count() {
        let m = LatencyModel::tableau_like();
        let t1 = m.time_for(1_000_000);
        let t2 = m.time_for(2_000_000);
        let overhead = m.overhead.as_secs_f64();
        let slope1 = t1.as_secs_f64() - overhead;
        let slope2 = t2.as_secs_f64() - overhead;
        assert!((slope2 / slope1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_sanity() {
        // Figure 2: Tableau needs > 4 minutes for 50M tuples but is well under
        // a minute for 1M; MathGL is faster at every size.
        let tableau = LatencyModel::tableau_like();
        let mathgl = LatencyModel::mathgl_like();
        assert!(tableau.time_for(50_000_000) > Duration::from_secs(240));
        assert!(tableau.time_for(1_000_000) < Duration::from_secs(60));
        assert!(tableau.time_for(1_000_000) > Duration::from_secs(2));
        for n in [1_000_000usize, 10_000_000, 50_000_000] {
            assert!(mathgl.time_for(n) < tableau.time_for(n));
        }
    }

    #[test]
    fn tuples_within_inverts_time_for() {
        let m = LatencyModel::mathgl_like();
        for budget_ms in [500u64, 2_000, 10_000] {
            let budget = Duration::from_millis(budget_ms);
            let n = m.tuples_within(budget);
            assert!(m.time_for(n) <= budget);
            assert!(m.time_for(n + 2) > budget);
        }
        // A budget below the fixed overhead admits no tuples.
        assert_eq!(m.tuples_within(Duration::from_millis(1)), 0);
    }

    #[test]
    fn calibration_produces_a_positive_linear_model() {
        let renderer = ScatterRenderer::new(PlotStyle::default());
        let viewport = Viewport::new(BoundingBox::new(0.0, 0.0, 1.0, 1.0), 200, 200);
        let m = LatencyModel::calibrate(&renderer, &viewport, &[1_000, 50_000]);
        assert!(m.per_tuple > Duration::ZERO);
        assert_eq!(m.label, "rasterizer");
        // Predictions grow with n.
        assert!(m.time_for(100_000) > m.time_for(10_000));
    }

    #[test]
    #[should_panic(expected = "at least two sizes")]
    fn calibration_requires_two_sizes() {
        let renderer = ScatterRenderer::new(PlotStyle::default());
        let viewport = Viewport::new(BoundingBox::new(0.0, 0.0, 1.0, 1.0), 50, 50);
        let _ = LatencyModel::calibrate(&renderer, &viewport, &[10]);
    }
}
