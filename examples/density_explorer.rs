//! Density embedding and the simulated user study.
//!
//! ```text
//! cargo run --release --example density_explorer
//! ```
//!
//! Demonstrates the Section V extension: plain VAS deliberately equalizes
//! point density, which hurts density-estimation and clustering tasks; the
//! density-embedding second pass attaches per-point counters that the
//! renderer turns back into visual density (dot size). The example runs the
//! simulated density and clustering users on both variants and prints their
//! success rates, mirroring Table I(b) and I(c).

use vas::prelude::*;

fn main() {
    // --- Density estimation on the skewed GPS-like data.
    let data = GeolifeGenerator::with_size(60_000, 9).generate();
    let k = 2_000;

    let plain = VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data);
    let embedded = with_embedded_density(plain.clone(), &data);
    println!(
        "VAS sample of {k} points; density counters attached in a second pass \
         (total mass {} = dataset size {})",
        embedded.total_density(),
        data.len()
    );

    let density_task = DensityTask::generate(&data, 8, 1);
    println!(
        "\ndensity-estimation task ({} questions):",
        density_task.questions().len()
    );
    println!(
        "  plain VAS          {:.2}",
        density_task.success_ratio(&plain)
    );
    println!(
        "  VAS with density   {:.2}",
        density_task.success_ratio(&embedded)
    );
    let uniform = UniformSampler::new(k, 2).sample_dataset(&data);
    println!(
        "  uniform            {:.2}",
        density_task.success_ratio(&uniform)
    );

    // --- Clustering on the paper's Gaussian-mixture datasets.
    println!("\nclustering task (per generated dataset, 1 = correct count):");
    for variant in 0..4 {
        let gen = GaussianMixtureGenerator::paper_clustering_dataset(variant, 30_000, 13);
        let truth = gen.n_clusters();
        let mixture = gen.generate();
        let task = ClusteringTask::new(&mixture, truth);

        let vas_plain =
            VasSampler::from_dataset(&mixture, VasConfig::new(k)).sample_dataset(&mixture);
        let vas_density = with_embedded_density(vas_plain.clone(), &mixture);
        let uni = UniformSampler::new(k, 3).sample_dataset(&mixture);

        println!(
            "  dataset {variant} ({truth} cluster{}): uniform={} vas={} vas+density={}",
            if truth == 1 { "" } else { "s" },
            task.perceived_clusters(&uni),
            task.perceived_clusters(&vas_plain),
            task.perceived_clusters(&vas_density),
        );
    }

    // --- A picture is worth a thousand counters.
    let viewport = Viewport::fit(&embedded.points, 160, 80);
    let canvas =
        ScatterRenderer::new(PlotStyle::density_plot(5)).render_sample(&embedded, &viewport);
    println!("\nASCII preview of the density-embedded VAS sample (dot size ∝ √density):");
    print!("{}", canvas.ascii_preview(72));
}
