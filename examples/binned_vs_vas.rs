//! Comparing the two families of visualization accelerators on the same data:
//! pre-aggregation (a binned tile pyramid) versus visualization-aware
//! sampling — the trade-off discussed in the paper's related-work section.
//!
//! ```text
//! cargo run --release --example binned_vs_vas
//! ```
//!
//! The example builds both structures over the same GPS-like dataset, prints
//! their storage cost, then drills into a deep-zoom viewport and reports what
//! each can still show there. It also demonstrates the persistence layer: the
//! VAS sample catalog is saved to disk and reloaded before querying.

use vas::binned::{render_heatmap, TilePyramid, TilePyramidConfig};
use vas::prelude::*;
use vas::storage::{load_catalog, save_catalog, SampleCatalog};

fn main() -> std::io::Result<()> {
    let data = GeolifeGenerator::with_size(150_000, 31).generate();
    println!("dataset: {} points", data.len());

    // --- Offline construction of both accelerators.
    let pyramid = TilePyramid::build(&data, TilePyramidConfig { max_level: 8 });
    let catalog = SampleCatalog::build_nested(&data, &[2_000, 20_000], |k| {
        VasSampler::from_dataset(&data, VasConfig::new(k))
    });
    println!(
        "binned pyramid: {} non-empty cells across {} levels",
        pyramid.total_cells(),
        pyramid.max_level() + 1
    );
    println!(
        "VAS catalog:    {} points across samples of sizes {:?} (nested)",
        catalog.total_points(),
        catalog.sizes()
    );

    // --- Persistence round trip (the offline index survives restarts).
    let dir = std::path::PathBuf::from("target/vas_catalog");
    save_catalog(&catalog, &dir)?;
    let catalog = load_catalog(&dir)?;
    println!(
        "catalog reloaded from {} ({} samples)\n",
        dir.display(),
        catalog.len()
    );

    // --- A deep zoom into a trajectory region.
    let zoom = ZoomWorkload::new(3).regions(&data, ZoomLevel::Deep, 1)[0].viewport;
    let truth = data.filter_region(&zoom).len();
    println!("deep-zoom viewport holds {truth} original points");

    // Binned answer: coarse cells only.
    let (level, cells) = pyramid.query_for_render(&zoom, 512);
    println!(
        "  binned aggregation answers at level {level}: {} cells (resolution capped)",
        cells.len()
    );
    let heat = render_heatmap(&pyramid, &zoom, 512, 512, Colormap::Heat);
    heat.write_ppm("target/plots_binned_zoom.ppm")?;

    // VAS answer: actual points, re-renderable at any resolution.
    let sample = catalog.largest().expect("catalog not empty");
    let visible = sample.filter_region(&zoom);
    println!(
        "  VAS sample (K = {}) answers with {} real points",
        sample.len(),
        visible.len()
    );
    let canvas = ScatterRenderer::new(PlotStyle::map_plot())
        .render_points(&visible, &Viewport::new(zoom, 512, 512));
    canvas.write_ppm("target/plots_vas_zoom.ppm")?;

    println!(
        "\nimages written to target/plots_binned_zoom.ppm and target/plots_vas_zoom.ppm —\n\
         the heatmap shows {level}-level blocks while the VAS plot shows the trajectory shape."
    );
    Ok(())
}
