//! Map-plot reproduction of Figure 1: overview and zoomed views of the
//! Geolife-like dataset under stratified sampling and VAS.
//!
//! ```text
//! cargo run --release --example geolife_map
//! ```
//!
//! Writes PPM images (openable with any image viewer, or convert with
//! `magick x.ppm x.png`) to `target/plots/`:
//!
//! * `<method>_overview.ppm` — the full extent, altitude color-encoded;
//! * `<method>_zoom.ppm` — a deep zoom into a trajectory region.
//!
//! At overview zoom the methods look nearly identical; the zoomed images show
//! that only VAS retains the road-like structures, which is exactly the
//! qualitative claim of the paper's Figure 1.

use std::path::PathBuf;
use vas::prelude::*;

fn main() -> std::io::Result<()> {
    let out_dir = PathBuf::from("target/plots");
    std::fs::create_dir_all(&out_dir)?;

    // Figure 1 uses 100K sampled points out of the 2B-point OpenStreetMap
    // dataset; we scale both sides down while keeping the ratio extreme.
    let data = GeolifeGenerator::with_size(200_000, 2016).generate();
    let k = 5_000;
    println!("dataset: {} points, sampling K = {k}", data.len());

    // The paper's stratified baseline for this figure: a 316×316 grid with
    // per-cell balanced allocation. We keep the grid proportionally fine.
    let stratified = StratifiedSampler::square(k, data.bounds(), 316, 3).sample_dataset(&data);
    let vas = VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data);

    // Pick a deterministic zoom region that contains trajectory structure.
    let zoom = ZoomWorkload::new(11).regions(&data, ZoomLevel::Deep, 1)[0].viewport;

    let overview = Viewport::new(
        data.bounds().padded(data.bounds().diagonal() * 0.01),
        900,
        900,
    );
    let zoomed = Viewport::new(zoom, 900, 900);
    let renderer = ScatterRenderer::new(PlotStyle::map_plot());

    for sample in [&stratified, &vas] {
        let over = renderer.render_points(&sample.points, &overview);
        let over_path = out_dir.join(format!("{}_overview.ppm", sample.method));
        over.write_ppm(&over_path)?;

        let visible = sample.filter_region(&zoom);
        let zoom_canvas = renderer.render_points(&visible, &zoomed);
        let zoom_path = out_dir.join(format!("{}_zoom.ppm", sample.method));
        zoom_canvas.write_ppm(&zoom_path)?;

        println!(
            "{:<12} overview → {}  |  zoom ({} visible points) → {}",
            sample.method,
            over_path.display(),
            visible.len(),
            zoom_path.display()
        );
    }

    println!("\nzoomed-view point counts tell the story before you even open the images:");
    for sample in [&stratified, &vas] {
        println!(
            "  {:<12} {:>6} points inside the zoom viewport",
            sample.method,
            sample.filter_region(&zoom).len()
        );
    }
    Ok(())
}
