//! Quickstart: build a visualization-aware sample and see why it beats
//! uniform sampling.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example generates a skewed GPS-like dataset, draws a 500-point sample
//! with uniform reservoir sampling, stratified sampling and VAS, then
//! compares (a) the paper's log-loss-ratio quality metric and (b) an ASCII
//! preview of a zoomed-in view, where the difference is easy to see with the
//! naked eye.

use vas::prelude::*;

fn main() {
    // A 50K-point synthetic stand-in for the Geolife GPS dataset: a dense
    // urban core plus sparse long-distance trips.
    let data = GeolifeGenerator::with_size(50_000, 42).generate();
    println!("dataset: {} points, extent {:?}", data.len(), data.bounds());

    let k = 500;
    let kernel = GaussianKernel::for_dataset(&data);

    // --- Build one sample per method (all single-pass over the same data).
    let uniform = UniformSampler::new(k, 1).sample_dataset(&data);
    let stratified = StratifiedSampler::square(k, data.bounds(), 10, 1).sample_dataset(&data);
    let vas = VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data);

    // --- Compare the paper's quality metric (lower is better, 0 is perfect).
    let estimator = LossEstimator::new(&data, &kernel, LossConfig::default());
    println!("\nlog-loss-ratio at K = {k} (lower is better):");
    for sample in [&uniform, &stratified, &vas] {
        println!(
            "  {:<12} {:.3}",
            sample.method,
            estimator.log_loss_ratio(&kernel, &sample.points)
        );
    }

    // --- Zoom into a small region and look at what each sample can show.
    let zoom = ZoomWorkload::new(7).regions(&data, ZoomLevel::Deep, 1)[0].viewport;
    println!("\nzoomed view ({zoom:?}):");
    for sample in [&uniform, &stratified, &vas] {
        let visible = sample.filter_region(&zoom);
        let viewport = Viewport::new(zoom, 160, 80);
        let canvas = ScatterRenderer::default_style().render_points(&visible, &viewport);
        println!(
            "\n--- {} : {} of {} sampled points fall inside the zoom region",
            sample.method,
            visible.len(),
            sample.len()
        );
        print!("{}", canvas.ascii_preview(72));
    }

    println!(
        "\nVAS keeps points everywhere the data lives, so the zoomed view still\n\
         shows the local structure; uniform and stratified samples concentrate\n\
         their budget in globally dense areas and leave this region nearly empty."
    );
}
