//! The end-to-end architecture of the paper's Figure 3: a visualization tool
//! issuing queries against a database that answers from pre-built
//! visualization-aware samples within an interactive latency budget.
//!
//! ```text
//! cargo run --release --example interactive_dashboard
//! ```
//!
//! The example registers a table, builds an offline VAS sample catalog
//! (the "index construction" step of Section II-D), and then simulates an
//! interactive session: an overview plot followed by a sequence of zooms,
//! each with a 500 ms latency budget. The latency model converts the budget
//! into a point budget; the engine picks the best pre-built sample.

use std::time::Duration;
use vas::prelude::*;

fn main() {
    // --- Offline: load the table and build the visualization index.
    let data = GeolifeGenerator::with_size(100_000, 7).generate();
    let mut engine = VizEngine::new();
    engine.register_table(Table::from_dataset(&data));
    let table = data.name.clone();

    let sizes = [1_000usize, 5_000, 20_000];
    println!("building offline VAS sample catalog for sizes {sizes:?} …");
    engine
        .build_catalog(&table, "x", "y", Some("value"), &sizes, |k| {
            VasSampler::from_dataset(&data, VasConfig::new(k))
        })
        .expect("catalog construction");
    println!(
        "catalog ready: {:?} samples stored\n",
        engine.catalog_sizes(&table, "x", "y")
    );

    // --- Online: the tool renders within a latency budget.
    let latency = LatencyModel::tableau_like();
    let budget = Duration::from_millis(500);
    let point_budget = latency.tuples_within(budget);
    println!(
        "latency budget {budget:?} → at most {point_budget} points per frame \
         (model: {})\n",
        latency.label
    );

    // An exploration session: overview, then three successive zooms.
    let session = ZoomWorkload::new(3).session(&data, 3);
    let renderer = ScatterRenderer::new(PlotStyle::map_plot());

    for (i, step) in session.iter().enumerate() {
        let query = VizQuery::full(&table)
            .in_region(step.viewport)
            .with_budget(point_budget);
        let result = engine.query(&query).expect("query");
        let viewport = Viewport::new(step.viewport, 640, 640);
        let canvas = renderer.render_points(&result.points, &viewport);
        let predicted = latency.time_for(result.points.len());
        println!(
            "frame {i}: {:?} zoom | sample of {} → {} visible points | predicted viz time {:?} | ink {} px",
            step.level,
            result.source_size,
            result.points.len(),
            predicted,
            canvas.ink(Color::WHITE),
        );
        assert!(result.from_sample);
        assert!(predicted <= budget + latency.overhead);
    }

    // For contrast: the exact (unsampled) query at overview zoom.
    let exact = engine.query(&VizQuery::full(&table)).expect("exact query");
    println!(
        "\nexact overview query returns {} points → predicted viz time {:?} \
         (vs {:?} budget) — this is the latency VAS removes",
        exact.points.len(),
        latency.time_for(exact.points.len()),
        budget
    );
}
