//! Offline vendored stand-in for the `serde_json` crate.
//!
//! Serializes the vendored `serde` [`Value`] tree to JSON text and parses
//! JSON text back, exposing the `to_string` / `to_string_pretty` /
//! `from_str` entry points the workspace uses. The grammar covered is the
//! standard JSON subset those call sites produce: null, booleans, finite
//! numbers, strings with the common escapes, arrays and objects.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize};
use std::fmt::Write as _;

pub use serde::Value;

/// Error type shared by serialization and parsing.
pub type Error = DeError;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Renders `value` as human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(DeError::msg(format!(
            "trailing characters at byte {} of JSON input",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out)?,
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) -> Result<()> {
    if !n.is_finite() {
        return Err(DeError::msg(format!(
            "cannot serialize non-finite number {n}"
        )));
    }
    // Integers inside the exactly-representable window print without a
    // fractional part, so usize/u64 fields survive a round trip unchanged.
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::msg(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(DeError::msg(format!(
                "unexpected {:?} at byte {} of JSON input",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = match std::str::from_utf8(rest)
                .map_err(|_| DeError::msg("invalid UTF-8 in JSON string"))?
                .chars()
                .next()
            {
                Some(c) => c,
                None => return Err(DeError::msg("unterminated JSON string")),
            };
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| DeError::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| DeError::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| DeError::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(DeError::msg(format!(
                                "unknown escape `\\{}` in JSON string",
                                other as char
                            )))
                        }
                    }
                }
                c => s.push(c),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::msg("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| DeError::msg(format!("invalid JSON number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("version".into(), Value::Number(1.0)),
            (
                "samples".into(),
                Value::Array(vec![Value::Object(vec![
                    ("method".into(), Value::String("vas (ES+Loc)".into())),
                    ("len".into(), Value::Number(1000.0)),
                    ("has_densities".into(), Value::Bool(true)),
                ])]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn escapes_survive() {
        let v = Value::String("line\nbreak \"quoted\" back\\slash\ttab".into());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&123u64).unwrap(), "123");
        assert_eq!(to_string(&(-7i32)).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("123 junk").is_err());
    }
}
