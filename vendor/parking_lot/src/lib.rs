//! Offline vendored stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! A poisoned std lock (a panic while held) is recovered rather than
//! propagated, matching `parking_lot`'s behavior of never poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value (requires `&mut self`,
    /// so no locking is necessary).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
