//! Offline vendored stand-in for the `rand_distr` crate.
//!
//! Provides the [`Distribution`] trait and the [`Normal`] distribution —
//! the only pieces of `rand_distr` 0.4 the workspace uses. Sampling is
//! Box–Muller, driven by the deterministic vendored [`rand`] generator, so
//! draws are reproducible for a fixed seed.

#![forbid(unsafe_code)]

use rand::RngCore;

/// Types that can produce samples of `T` from a random source.
pub trait Distribution<T> {
    /// Draws one sample using `rng` as the source of randomness.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or not finite.
    BadVariance,
    /// The mean was not finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation. Fails if `std_dev` is negative or either parameter is
    /// non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform. Uses one fresh pair of uniforms per draw
        // (no caching of the second deviate) to keep the sampler stateless.
        let u1 = loop {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u > 0.0 {
                break u;
            }
        };
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sample_moments_are_roughly_right() {
        let n = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let draws: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / draws.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean drifted: {mean}");
        assert!(
            (var.sqrt() - 2.0).abs() < 0.1,
            "std drifted: {}",
            var.sqrt()
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..50).map(|_| n.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..50).map(|_| n.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
