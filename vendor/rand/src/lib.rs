//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements the small slice of the `rand` 0.8 API that the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over numeric ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256** seeded through SplitMix64, so all streams
//! are fully deterministic for a given `u64` seed — the property every
//! dataset generator and sampler in the workspace relies on. The streams do
//! **not** match upstream `rand`'s ChaCha-based `StdRng`; nothing in the
//! workspace depends on the exact stream, only on determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                start.wrapping_add(draw)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = unit_f64(rng) as $t;
                start + (end - start) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1], got {p}"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors for initializing the state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.next_u64_pub() == b.next_u64_pub())
            .count();
        assert!(same < 4);
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
