//! Offline vendored stand-in for the `serde` crate.
//!
//! The real `serde` is a zero-copy serialization *framework*; this stand-in
//! is a much smaller thing: types convert to and from an owned JSON-like
//! [`Value`] tree. The [`Serialize`] and [`Deserialize`] traits are
//! derivable via the companion `serde_derive` proc-macro crate (re-exported
//! here, so `#[derive(Serialize, Deserialize)]` works unchanged), and the
//! vendored `serde_json` crate renders/parses the tree as JSON text.
//!
//! Supported shapes (everything the workspace derives): structs with named
//! fields, enums with unit and tuple variants, and the primitive/container
//! impls below.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree — the data model of this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers are exact up to 2^53).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be converted into the requested
/// type (or, in `serde_json`, when text cannot be parsed at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        DeError(message.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    // Reject fractional and out-of-range numbers instead of
                    // letting `as` saturate: a corrupted manifest must fail
                    // loudly, not produce a usize::MAX length.
                    Value::Number(n)
                        if n.fract() == 0.0
                            && *n >= <$t>::MIN as f64
                            && *n <= <$t>::MAX as f64 =>
                    {
                        Ok(*n as $t)
                    }
                    other => Err(DeError::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(DeError::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<String> = vec!["a".into(), "b".into()];
        assert_eq!(Vec::<String>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn integers_reject_bad_numbers() {
        assert!(usize::from_value(&Value::Number(-1.0)).is_err());
        assert!(usize::from_value(&Value::Number(1.5)).is_err());
        assert!(u32::from_value(&Value::Number(1e300)).is_err());
        assert!(i8::from_value(&Value::Number(200.0)).is_err());
        assert_eq!(usize::from_value(&Value::Number(7.0)).unwrap(), 7);
        // Floats still accept anything numeric.
        assert_eq!(f64::from_value(&Value::Number(1e300)).unwrap(), 1e300);
    }

    #[test]
    fn object_get() {
        let obj = Value::Object(vec![("k".into(), Value::Number(1.0))]);
        assert_eq!(obj.get("k"), Some(&Value::Number(1.0)));
        assert_eq!(obj.get("missing"), None);
    }
}
