//! Offline vendored stand-in for the `proptest` crate.
//!
//! Supports the subset of the `proptest!` surface this workspace uses:
//!
//! ```ignore
//! proptest::proptest! {
//!     #[test]
//!     fn my_property(
//!         xs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 2..20),
//!         flag in proptest::bool::ANY,
//!     ) {
//!         proptest::prop_assert!(xs.len() >= 2);
//!     }
//! }
//! ```
//!
//! Each property runs [`CASES`] times with inputs drawn from a generator
//! seeded from the test's module path and name, so failures reproduce
//! exactly across runs. There is no shrinking: a failing case panics with
//! the standard assertion message (the deterministic seed stands in for a
//! minimal counterexample).

#![forbid(unsafe_code)]

use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each property is exercised with.
pub const CASES: usize = 64;

/// Builds the deterministic generator for one property test.
pub fn test_rng(test_path: &str) -> TestRng {
    // FNV-1a over the fully qualified test name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

/// Input generators.
pub mod strategy {
    use super::TestRng;

    /// A source of random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }
}

use strategy::Strategy;

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(
            !len.is_empty(),
            "vec strategy needs a non-empty length range"
        );
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over booleans.
pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy drawing `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. See the crate docs for the accepted grammar.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __vas_proptest_rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __vas_proptest_case in 0..$crate::CASES {
                    let _ = __vas_proptest_case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __vas_proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn tuples_and_vecs_stay_in_bounds(
            pts in crate::collection::vec((-10.0f64..10.0, 0usize..5), 1..30),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(!pts.is_empty() && pts.len() < 30);
            for (x, k) in &pts {
                prop_assert!((-10.0..10.0).contains(x));
                prop_assert!(*k < 5);
            }
            // `flag` only checks that the bool strategy plugs into the macro.
            let _: bool = flag;
        }
    }

    #[test]
    fn rng_is_deterministic_per_test_name() {
        let mut a = crate::test_rng("some::test");
        let mut b = crate::test_rng("some::test");
        let s: Strategy2 = 0.0f64..1.0;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    type Strategy2 = std::ops::Range<f64>;
}
