//! Offline vendored stand-in for the `criterion` crate.
//!
//! Implements the API surface the `bench` crate uses — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros — with
//! a simple wall-clock measurement loop instead of criterion's statistics
//! engine: each benchmark is warmed up, then timed over enough iterations
//! to fill a small measurement window, and the mean time per iteration is
//! printed. No plots, no outlier analysis, no saved baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendered into the label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id labeled `{name}/{parameter}`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    last_ns_per_iter: f64,
    measurement_window: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (also primes caches/allocations).
        black_box(routine());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_window || iters >= 1 << 20 {
                self.last_ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_window: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.measurement_window, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_window: self.measurement_window,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_window: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in has no sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.measurement_window,
            f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.measurement_window,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, window: Duration, mut f: F) {
    let mut bencher = Bencher {
        last_ns_per_iter: 0.0,
        measurement_window: window,
    };
    f(&mut bencher);
    let ns = bencher.last_ns_per_iter;
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{label:<50} {value:>10.3} {unit}/iter");
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            measurement_window: Duration::from_micros(200),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
