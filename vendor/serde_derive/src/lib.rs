//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (neither is available offline): the
//! input item is parsed by walking its token trees directly, and the
//! generated impls are built as strings and re-parsed into a `TokenStream`.
//!
//! Supported shapes — the full set used by this workspace:
//! * structs with named fields,
//! * enums whose variants are unit or tuple variants.
//!
//! Generics, tuple structs and struct-variant enums produce a
//! `compile_error!` with a clear message instead of silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (conversion into the `Value` tree).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (conversion out of the `Value` tree).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Struct with named fields.
    Struct { fields: Vec<String> },
    /// Enum of unit variants and tuple variants (with field counts).
    Enum { variants: Vec<(String, usize)> },
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    let code = match (&parsed.shape, mode) {
        (Shape::Struct { fields }, Mode::Serialize) => struct_serialize(&parsed.name, fields),
        (Shape::Struct { fields }, Mode::Deserialize) => struct_deserialize(&parsed.name, fields),
        (Shape::Enum { variants }, Mode::Serialize) => enum_serialize(&parsed.name, variants),
        (Shape::Enum { variants }, Mode::Deserialize) => enum_deserialize(&parsed.name, variants),
    };
    code.parse()
        .unwrap_or_else(|e| compile_error(&format!("serde_derive generated invalid code: {e}")))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// Walks the derive input down to its name and field/variant lists.
fn parse_input(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!(
                "serde_derive: expected `struct` or `enum`, got {other:?}"
            ))
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported by the vendored stand-in"
        ));
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde_derive: tuple struct `{name}` is not supported by the vendored stand-in"
                ));
            }
            Some(_) => i += 1,
            None => return Err(format!("serde_derive: `{name}` has no body to derive from")),
        }
    };
    let shape = if kind == "struct" {
        Shape::Struct {
            fields: parse_named_fields(body)?,
        }
    } else {
        Shape::Enum {
            variants: parse_variants(&name, body)?,
        }
    };
    Ok(Parsed { name, shape })
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            // `pub` possibly followed by `(crate)` etc.
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Extracts field names from a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde_derive: expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde_derive: expected `:` after `{name}`, got {other:?}"
                ))
            }
        }
        // Skip the type, tracking angle-bracket depth so commas inside
        // generics don't end the field early.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Extracts `(variant name, tuple field count)` pairs from an enum body.
/// Unit variants get count 0.
fn parse_variants(enum_name: &str, body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde_derive: expected variant name, got {other:?}"
                ))
            }
        };
        i += 1;
        let mut count = 0usize;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                count = count_top_level_items(g.stream());
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde_derive: struct variant `{enum_name}::{name}` is not supported by the vendored stand-in"
                ));
            }
            _ => {}
        }
        // Skip to the next `,` (covers discriminants like `= 3`).
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push((name, count));
    }
    Ok(variants)
}

fn count_top_level_items(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        saw_token = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_token {
        count + 1
    } else {
        0
    }
}

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n\
                ::serde::Value::Object(::std::vec![{entries}])\n\
            }}\n\
        }}"
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(__v.get({f:?}).ok_or_else(|| \
                 ::serde::DeError::msg(concat!(\"missing field `\", {f:?}, \"` in {name}\")))?)?,"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                ::std::result::Result::Ok(Self {{ {entries} }})\n\
            }}\n\
        }}"
    )
}

fn enum_serialize(name: &str, variants: &[(String, usize)]) -> String {
    let arms: String = variants
        .iter()
        .map(|(v, count)| {
            if *count == 0 {
                format!(
                    "{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?})),"
                )
            } else {
                let binders: Vec<String> = (0..*count).map(|k| format!("__f{k}")).collect();
                let values: String = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b}),"))
                    .collect();
                format!(
                    "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from({v:?}), \
                     ::serde::Value::Array(::std::vec![{values}]))]),",
                    binders.join(", ")
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n\
                match self {{ {arms} }}\n\
            }}\n\
        }}"
    )
}

fn enum_deserialize(name: &str, variants: &[(String, usize)]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|(_, count)| *count == 0)
        .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
        .collect();
    let tuple_arms: String = variants
        .iter()
        .filter(|(_, count)| *count > 0)
        .map(|(v, count)| {
            let extracts: String = (0..*count)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?,"))
                .collect();
            format!(
                "{v:?} => {{\n\
                    let __items = match __payload {{\n\
                        ::serde::Value::Array(a) if a.len() == {count} => a,\n\
                        other => return ::std::result::Result::Err(::serde::DeError::msg(\
                            ::std::format!(\"variant {name}::{v} expects {count} value(s), got {{other:?}}\"))),\n\
                    }};\n\
                    ::std::result::Result::Ok({name}::{v}({extracts}))\n\
                }}"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                match __v {{\n\
                    ::serde::Value::String(__s) => match __s.as_str() {{\n\
                        {unit_arms}\n\
                        other => ::std::result::Result::Err(::serde::DeError::msg(\
                            ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                    }},\n\
                    ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                        let (__tag, __payload) = &__fields[0];\n\
                        match __tag.as_str() {{\n\
                            {tuple_arms}\n\
                            other => ::std::result::Result::Err(::serde::DeError::msg(\
                                ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                        }}\n\
                    }}\n\
                    other => ::std::result::Result::Err(::serde::DeError::msg(\
                        ::std::format!(\"expected {name} variant, got {{other:?}}\"))),\n\
                }}\n\
            }}\n\
        }}"
    )
}
