//! # vas — Visualization-Aware Sampling
//!
//! A Rust reproduction of *"Visualization-Aware Sampling for Very Large
//! Databases"* (Park, Cafarella, Mozafari — ICDE 2016).
//!
//! VAS selects a small subset of a large 2-D dataset such that scatter plots
//! and map plots rendered from the subset stay faithful to the full data at
//! every zoom level, letting interactive visualization tools answer in
//! milliseconds instead of minutes. This facade crate re-exports the public
//! API of the individual workspace crates:
//!
//! | module | contents |
//! |---|---|
//! | [`data`] | dataset generators (Geolife-like GPS traces, SPLOM, Gaussian mixtures), points, zoom workloads |
//! | [`spatial`] | the `LocalityIndex` trait with R-tree, k-d tree and spatial-hash backends, plus grid substrates |
//! | [`sampling`] | the [`Sampler`](sampling::Sampler) trait and the uniform / stratified baselines |
//! | [`core`] | the VAS objective, the Interchange algorithm, density embedding |
//! | [`obs`] | observability: typed counters, phase timers, latency histograms, event journal, JSON/Prometheus exporters |
//! | [`par`] | deterministic parallel substrate: scoped ordered fan-out/fan-in, background pipeline stage |
//! | [`exact`] | exact (branch-and-bound) solvers for small instances |
//! | [`eval`] | Monte-Carlo loss, log-loss-ratio, Spearman correlation |
//! | [`viz`] | scatter/map rasterizer, viewports, colormaps, latency model |
//! | [`user_sim`] | simulated users for the regression / density / clustering studies |
//! | [`storage`] | columnar store, sample catalog, dynamic-reduction query engine |
//! | [`stream`] | out-of-core ingestion: the `PointSource` streaming pipeline and the chunked columnar spill format |
//! | [`binned`] | binned-aggregation (tile pyramid) baseline for comparison |
//!
//! ## Quick start
//!
//! ```
//! use vas::prelude::*;
//!
//! // 1. Generate (or load) a dataset. (Kept small so `cargo test` stays
//! //    fast; the samplers scale to millions of points.)
//! let data = GeolifeGenerator::with_size(2_000, 42).generate();
//!
//! // 2. Build a visualization-aware sample of 100 points.
//! let mut sampler = VasSampler::from_dataset(&data, VasConfig::new(100));
//! let sample = sampler.sample_dataset(&data);
//!
//! // 3. Optionally attach density counters (Section V of the paper).
//! let sample = vas::core::density::with_embedded_density(sample, &data);
//!
//! // 4. Render it.
//! let viewport = Viewport::fit(&sample.points, 640, 480);
//! let canvas = ScatterRenderer::new(PlotStyle::density_plot(6)).render_sample(&sample, &viewport);
//! assert!(canvas.ink(Color::WHITE) > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vas_binned as binned;
pub use vas_core as core;
pub use vas_data as data;
pub use vas_eval as eval;
pub use vas_exact as exact;
pub use vas_obs as obs;
pub use vas_par as par;
pub use vas_sampling as sampling;
pub use vas_spatial as spatial;
pub use vas_storage as storage;
pub use vas_stream as stream;
pub use vas_user_sim as user_sim;
pub use vas_viz as viz;

/// The most commonly used types, importable with `use vas::prelude::*`.
pub mod prelude {
    pub use vas_binned::{TilePyramid, TilePyramidConfig};
    pub use vas_core::{
        density::with_embedded_density, embed_density, shard_budgets, BuildOutcome,
        CheckpointPolicy, GaussianKernel, InterchangeStrategy, Kernel, ShardedSampler, VasConfig,
        VasSampler,
    };
    pub use vas_data::{
        BoundingBox, Dataset, GaussianMixtureGenerator, GeolifeGenerator, Point, SplomGenerator,
        ZoomLevel, ZoomWorkload,
    };
    pub use vas_eval::{visual_similarity, LossConfig, LossEstimator, SimilarityConfig};
    pub use vas_exact::ExactSolver;
    pub use vas_obs::{
        parse_chrome_trace, Counter, FlightRecorder, Journal, MetricsRegistry, MetricsSnapshot,
        Phase, Recorder, SpanContext, SpanRecord, Tracer,
    };
    pub use vas_sampling::{
        PoissonDiskSampler, Sample, Sampler, StratifiedSampler, UniformSampler,
    };
    pub use vas_spatial::{
        AnyLocalityIndex, GridOccupancy, HashGrid, KdTree, LocalityBackend, LocalityIndex, RTree,
        ShardPartitioner, UniformGrid,
    };
    pub use vas_storage::{SampleCatalog, Table, VizEngine, VizQuery};
    pub use vas_stream::{
        spill_dataset, spill_source, ChunkedReader, ChunkedWriter, CsvSource, DatasetSource,
        FaultInjectorSource, FaultPlan, GeolifeSource, PointSource, PrefetchSource, RetryPolicy,
        RetryingSource, ShardSource, StreamStats, TrackingSource, VasError,
    };
    pub use vas_user_sim::{ClusteringTask, DensityTask, RegressionTask, WorkerPopulation};
    pub use vas_viz::{
        Canvas, Color, Colormap, LatencyModel, PlotStyle, ScatterRenderer, SizeEncoding, Viewport,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_the_crates_together() {
        let data = GeolifeGenerator::with_size(1_000, 1).generate();
        let mut sampler = VasSampler::from_dataset(&data, VasConfig::new(50));
        let sample = sampler.sample_dataset(&data);
        assert_eq!(sample.len(), 50);
        let viewport = Viewport::fit(&sample.points, 100, 100);
        let canvas = ScatterRenderer::default_style().render_points(&sample.points, &viewport);
        assert!(canvas.ink(Color::WHITE) > 0);
    }
}
