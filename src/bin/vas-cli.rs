//! `vas-cli` — build visualization-aware samples from CSV files on the
//! command line.
//!
//! ```text
//! vas-cli sample  --input data.csv --output sample.csv --size 10000 [--method vas|uniform|stratified] [--density]
//! vas-cli render  --input data.csv --output plot.ppm [--width 1200] [--height 900] [--density]
//! vas-cli loss    --data data.csv --sample sample.csv
//! vas-cli generate --output data.csv --kind geolife|splom|gaussian --points 100000 [--seed 42]
//! ```
//!
//! The CSV format is `x,y[,value]` with an optional header row. `sample`
//! builds an offline sample with the chosen method; `render` rasterizes a
//! file into a PPM image; `loss` reports the paper's log-loss-ratio of a
//! sample against its source data; `generate` produces the synthetic
//! datasets used throughout the reproduction.

use std::collections::HashMap;
use std::process::ExitCode;
use vas::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, flags)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "sample" => cmd_sample(&flags),
        "render" => cmd_render(&flags),
        "loss" => cmd_loss(&flags),
        "generate" => cmd_generate(&flags),
        _ => Err(format!("unknown command: {command}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  vas-cli sample   --input <csv> --output <csv> --size <K> [--method vas|uniform|stratified] [--density] [--seed N]
  vas-cli render   --input <csv> --output <ppm> [--width W] [--height H] [--density]
  vas-cli loss     --data <csv> --sample <csv>
  vas-cli generate --output <csv> --kind geolife|splom|gaussian --points N [--seed N]";

/// Splits `command flag value flag value …` into the command and a flag map.
fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let command = args.first()?.clone();
    let mut flags = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?.to_string();
        // Boolean flags (no value or next token is another flag).
        if i + 1 >= args.len() || args[i + 1].starts_with("--") {
            flags.insert(key, "true".to_string());
            i += 1;
        } else {
            flags.insert(key, args[i + 1].clone());
            i += 2;
        }
    }
    Some((command, flags))
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}\n{USAGE}"))
}

fn numeric<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag --{key} expects a number, got {v:?}")),
    }
}

fn load(path: &str) -> Result<Dataset, String> {
    vas::data::io::read_csv(path, path).map_err(|e| format!("reading {path}: {e}"))
}

fn cmd_sample(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = required(flags, "input")?;
    let output = required(flags, "output")?;
    let k: usize = numeric(flags, "size", 10_000)?;
    let seed: u64 = numeric(flags, "seed", 42)?;
    let method = flags.get("method").map(String::as_str).unwrap_or("vas");
    let data = load(input)?;

    let mut sample = match method {
        "vas" => VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data),
        "uniform" => UniformSampler::new(k, seed).sample_dataset(&data),
        "stratified" => StratifiedSampler::square(k, data.bounds(), 10, seed).sample_dataset(&data),
        other => return Err(format!("unknown method {other:?} (vas|uniform|stratified)")),
    };
    if flags.contains_key("density") {
        sample = with_embedded_density(sample, &data);
    }
    let out = Dataset::from_points(output, sample.points.clone());
    vas::data::io::write_csv(&out, output).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "wrote {} points ({} method{}) to {output}",
        sample.len(),
        sample.method,
        if sample.has_densities() {
            ", density counters computed"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_render(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = required(flags, "input")?;
    let output = required(flags, "output")?;
    let width: usize = numeric(flags, "width", 1_200)?;
    let height: usize = numeric(flags, "height", 900)?;
    let data = load(input)?;
    if data.is_empty() {
        return Err("input file contains no points".into());
    }
    let style = if flags.contains_key("density") {
        PlotStyle::density_plot(6)
    } else {
        PlotStyle::map_plot()
    };
    let viewport = Viewport::fit(&data.points, width, height);
    let canvas = ScatterRenderer::new(style).render_points(&data.points, &viewport);
    canvas
        .write_ppm(output)
        .map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "rendered {} points to {output} ({width}x{height})",
        data.len()
    );
    Ok(())
}

fn cmd_loss(flags: &HashMap<String, String>) -> Result<(), String> {
    let data = load(required(flags, "data")?)?;
    let sample = load(required(flags, "sample")?)?;
    if data.is_empty() {
        return Err("the data file contains no points".into());
    }
    let kernel = GaussianKernel::for_dataset(&data);
    let estimator = LossEstimator::new(&data, &kernel, LossConfig::default());
    let report = estimator.evaluate(&kernel, &sample.points);
    println!(
        "sample: {} of {} points\nmedian point-loss: {:.6e}\nlog-loss-ratio:    {:.4}",
        sample.len(),
        data.len(),
        report.median,
        estimator.log_loss_ratio(&kernel, &sample.points)
    );
    Ok(())
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let output = required(flags, "output")?;
    let kind = required(flags, "kind")?;
    let n: usize = numeric(flags, "points", 100_000)?;
    let seed: u64 = numeric(flags, "seed", 42)?;
    let dataset = match kind {
        "geolife" => GeolifeGenerator::with_size(n, seed).generate(),
        "splom" => SplomGenerator::with_size(n, seed).generate(),
        "gaussian" => GaussianMixtureGenerator::paper_clustering_dataset(2, n, seed).generate(),
        other => return Err(format!("unknown kind {other:?} (geolife|splom|gaussian)")),
    };
    vas::data::io::write_csv(&dataset, output).map_err(|e| format!("writing {output}: {e}"))?;
    println!("generated {} {kind} points into {output}", dataset.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_extracts_command_flags_and_booleans() {
        let args = strings(&[
            "sample",
            "--input",
            "a.csv",
            "--size",
            "100",
            "--density",
            "--output",
            "b.csv",
        ]);
        let (cmd, flags) = parse(&args).unwrap();
        assert_eq!(cmd, "sample");
        assert_eq!(flags.get("input").unwrap(), "a.csv");
        assert_eq!(flags.get("size").unwrap(), "100");
        assert_eq!(flags.get("density").unwrap(), "true");
        assert_eq!(flags.get("output").unwrap(), "b.csv");
    }

    #[test]
    fn parse_rejects_missing_command_and_bad_flags() {
        assert!(parse(&[]).is_none());
        assert!(parse(&strings(&["sample", "oops"])).is_none());
    }

    #[test]
    fn numeric_defaults_and_errors() {
        let (_, flags) = parse(&strings(&["x", "--size", "12"])).unwrap();
        assert_eq!(numeric(&flags, "size", 0usize).unwrap(), 12);
        assert_eq!(numeric(&flags, "missing", 7usize).unwrap(), 7);
        let (_, flags) = parse(&strings(&["x", "--size", "abc"])).unwrap();
        assert!(numeric(&flags, "size", 0usize).is_err());
    }

    #[test]
    fn generate_sample_loss_round_trip() {
        let dir = std::env::temp_dir().join(format!("vas-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv").to_string_lossy().to_string();
        let sample_path = dir.join("sample.csv").to_string_lossy().to_string();

        let (_, flags) = parse(&strings(&[
            "generate", "--output", &data_path, "--kind", "geolife", "--points", "2000",
        ]))
        .unwrap();
        cmd_generate(&flags).unwrap();

        let (_, flags) = parse(&strings(&[
            "sample",
            "--input",
            &data_path,
            "--output",
            &sample_path,
            "--size",
            "100",
            "--method",
            "vas",
        ]))
        .unwrap();
        cmd_sample(&flags).unwrap();
        let sample = load(&sample_path).unwrap();
        assert_eq!(sample.len(), 100);

        let (_, flags) = parse(&strings(&[
            "loss",
            "--data",
            &data_path,
            "--sample",
            &sample_path,
        ]))
        .unwrap();
        cmd_loss(&flags).unwrap();

        std::fs::remove_dir_all(dir).ok();
    }
}
