//! Regression tests pinning down determinism: the same seed must produce
//! byte-identical output across independent runs of every generator and
//! sampler. Future PRs that parallelize the hot loops (Interchange, R-tree
//! queries, dataset generation) must preserve this property — these tests
//! are the tripwire.

use vas::prelude::*;

/// Two points are byte-identical when every coordinate has the same bit
/// pattern — stricter than `==`, which would accept `-0.0 == 0.0`.
fn assert_points_bitwise_equal(a: &[Point], b: &[Point], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: lengths differ");
    for (i, (p, q)) in a.iter().zip(b).enumerate() {
        let pb = [p.x.to_bits(), p.y.to_bits(), p.value.to_bits()];
        let qb = [q.x.to_bits(), q.y.to_bits(), q.value.to_bits()];
        assert_eq!(pb, qb, "{what}: point {i} differs: {p:?} vs {q:?}");
    }
}

#[test]
fn geolife_generator_is_deterministic_per_seed() {
    let a = GeolifeGenerator::with_size(10_000, 77).generate();
    let b = GeolifeGenerator::with_size(10_000, 77).generate();
    assert_points_bitwise_equal(&a.points, &b.points, "GeolifeGenerator");

    // And a different seed actually changes the stream.
    let c = GeolifeGenerator::with_size(10_000, 78).generate();
    assert!(
        a.points.iter().zip(&c.points).any(|(p, q)| p != q),
        "different seeds must produce different datasets"
    );
}

#[test]
fn splom_and_gaussian_generators_are_deterministic_per_seed() {
    let a = SplomGenerator::with_size(5_000, 3).generate();
    let b = SplomGenerator::with_size(5_000, 3).generate();
    assert_points_bitwise_equal(&a.points, &b.points, "SplomGenerator");

    let a = GaussianMixtureGenerator::paper_clustering_dataset(0, 5_000, 9).generate();
    let b = GaussianMixtureGenerator::paper_clustering_dataset(0, 5_000, 9).generate();
    assert_points_bitwise_equal(&a.points, &b.points, "GaussianMixtureGenerator");
}

#[test]
fn uniform_sampler_is_deterministic_per_seed() {
    let data = GeolifeGenerator::with_size(20_000, 5).generate();
    let a = UniformSampler::new(500, 42).sample_dataset(&data);
    let b = UniformSampler::new(500, 42).sample_dataset(&data);
    assert_points_bitwise_equal(&a.points, &b.points, "UniformSampler");
}

#[test]
fn stratified_sampler_is_deterministic_per_seed() {
    let data = GeolifeGenerator::with_size(20_000, 5).generate();
    let bounds = data.bounds();
    let a = StratifiedSampler::square(500, bounds, 10, 42).sample_dataset(&data);
    let b = StratifiedSampler::square(500, bounds, 10, 42).sample_dataset(&data);
    assert_points_bitwise_equal(&a.points, &b.points, "StratifiedSampler");
}

#[test]
fn vas_sampler_is_deterministic() {
    // The Interchange algorithm is seedless (fully determined by the input
    // stream), so two runs over the same dataset must agree exactly — for
    // every strategy and every locality backend.
    let data = GeolifeGenerator::with_size(10_000, 21).generate();
    let mut cases = vec![(
        InterchangeStrategy::ExpandShrink,
        LocalityBackend::default(),
    )];
    for backend in LocalityBackend::ALL {
        cases.push((InterchangeStrategy::ExpandShrinkLocality, backend));
    }
    for (strategy, backend) in cases {
        let config = VasConfig::new(300)
            .with_strategy(strategy)
            .with_locality_backend(backend);
        let a = VasSampler::from_dataset(&data, config.clone()).sample_dataset(&data);
        let b = VasSampler::from_dataset(&data, config).sample_dataset(&data);
        assert_points_bitwise_equal(
            &a.points,
            &b.points,
            &format!("VasSampler ({}, {backend})", strategy.label()),
        );
    }
}

#[test]
fn optimized_inner_loop_is_bit_identical_to_the_legacy_implementation() {
    // PR 2 rebuilt the Interchange inner loop (tournament-tree Shrink,
    // zero-allocation spatial queries, cached cutoff radius). The refactor's
    // contract is that it is a pure speed-up: on the seeds pinned here, both
    // `ExpandShrink` and `ExpandShrinkLocality` must produce samples
    // byte-identical to the pre-refactor implementation, which is retained
    // behind `VasConfig::with_legacy_inner_loop` exactly for this test and
    // for the `fig10_inner_loop` benchmark baseline.
    for seed in [21u64, 99] {
        let data = GeolifeGenerator::with_size(10_000, seed).generate();
        let mut cases = vec![(
            InterchangeStrategy::ExpandShrink,
            LocalityBackend::default(),
        )];
        for backend in LocalityBackend::ALL {
            cases.push((InterchangeStrategy::ExpandShrinkLocality, backend));
        }
        for (strategy, backend) in cases {
            let config = VasConfig::new(300)
                .with_strategy(strategy)
                .with_locality_backend(backend);
            let optimized = VasSampler::from_dataset(&data, config.clone()).sample_dataset(&data);
            let legacy = VasSampler::from_dataset(&data, config.with_legacy_inner_loop(true))
                .sample_dataset(&data);
            assert_points_bitwise_equal(
                &optimized.points,
                &legacy.points,
                &format!(
                    "VasSampler optimized vs legacy ({}, {backend}, seed {seed})",
                    strategy.label()
                ),
            );
        }
    }
}

#[test]
fn es_loc_over_hashgrid_is_bit_identical_to_the_legacy_loop_per_tuple() {
    // The PR 3 contract, the same one PR 2 pinned for the R-tree: switching
    // the locality backend to the spatial hash is a pure speed-up. Lock-step
    // the optimized and legacy samplers over the HashGrid backend and compare
    // the full sample bit-for-bit after *every* observation.
    let data = GeolifeGenerator::with_size(6_000, 47).generate();
    let config = VasConfig::new(200)
        .with_strategy(InterchangeStrategy::ExpandShrinkLocality)
        .with_locality_backend(LocalityBackend::HashGrid);
    let mut optimized = VasSampler::from_dataset(&data, config.clone());
    let mut legacy = VasSampler::from_dataset(&data, config.with_legacy_inner_loop(true));
    for (t, p) in data.iter().enumerate() {
        optimized.observe(*p);
        legacy.observe(*p);
        assert_points_bitwise_equal(
            optimized.current_sample(),
            legacy.current_sample(),
            &format!("ES+Loc over HashGrid at tuple {t}"),
        );
        assert_eq!(
            optimized.replacements(),
            legacy.replacements(),
            "replacement count diverged at tuple {t}"
        );
    }
    assert_eq!(
        optimized.current_objective().to_bits(),
        legacy.current_objective().to_bits(),
        "objective bits diverged"
    );
}

#[test]
fn streaming_generator_sources_match_materializing_generators() {
    // The out-of-core pipeline's first link: a generator streamed in chunks
    // must emit bit-for-bit the dataset `generate()` materializes, for every
    // generator family, across awkward chunk sizes, and again after a reset.
    let geolife = GeolifeGenerator::with_size(8_000, 77);
    let reference = geolife.generate();
    for chunk in [1usize, 997, 8_000, 9_001] {
        let mut source = GeolifeSource::new(geolife.clone(), chunk);
        let streamed = source.read_all().unwrap();
        assert_points_bitwise_equal(
            &streamed,
            &reference.points,
            &format!("GeolifeSource chunk {chunk}"),
        );
        source.reset().unwrap();
        let rescanned = source.read_all().unwrap();
        assert_points_bitwise_equal(
            &rescanned,
            &reference.points,
            &format!("GeolifeSource rescan chunk {chunk}"),
        );
    }

    let gaussian = GaussianMixtureGenerator::paper_clustering_dataset(1, 5_000, 9);
    let reference = gaussian.generate();
    let streamed = vas::stream::GaussianMixtureSource::new(gaussian, 613)
        .read_all()
        .unwrap();
    assert_points_bitwise_equal(&streamed, &reference.points, "GaussianMixtureSource");

    let splom = SplomGenerator::with_size(5_000, 3);
    let reference = splom.generate();
    let streamed = vas::stream::SplomSource::new(splom, 0, 1, 613)
        .read_all()
        .unwrap();
    assert_points_bitwise_equal(&streamed, &reference.points, "SplomSource");
}

#[test]
fn chunked_spill_round_trip_is_bit_exact() {
    // Generator → spill file → reader must reproduce the stream exactly;
    // this is the link that turns the codec's per-value bit-exactness into a
    // whole-pipeline guarantee.
    let data = GeolifeGenerator::with_size(10_000, 21).generate();
    let path = std::env::temp_dir().join(format!(
        "vas-determinism-spill-{}.vaschunk",
        std::process::id()
    ));
    spill_dataset(&data, &path, 777).unwrap();
    let restored = ChunkedReader::open(&path).unwrap().read_dataset().unwrap();
    assert_points_bitwise_equal(&restored.points, &data.points, "chunked spill round trip");
    std::fs::remove_file(path).ok();
}

#[test]
fn build_from_source_over_chunked_spill_is_bit_identical_to_build() {
    // The out-of-core contract: spilling a dataset to the chunked columnar
    // format and streaming it through `build_from_source` must reproduce
    // `build()` over the in-memory dataset bit-for-bit — same seed, every
    // locality backend's default (optimized) path, plus plain ES. The kernel
    // bandwidth is left unset so the streaming ε-resolution pre-pass is part
    // of the pinned contract too.
    let data = GeolifeGenerator::with_size(10_000, 21).generate();
    let path = std::env::temp_dir().join(format!(
        "vas-determinism-bfs-{}.vaschunk",
        std::process::id()
    ));
    spill_dataset(&data, &path, 1_024).unwrap();

    let mut cases = vec![(
        InterchangeStrategy::ExpandShrink,
        LocalityBackend::default(),
    )];
    for backend in LocalityBackend::ALL {
        cases.push((InterchangeStrategy::ExpandShrinkLocality, backend));
    }
    for (strategy, backend) in cases {
        let config = VasConfig::new(300)
            .with_strategy(strategy)
            .with_locality_backend(backend);
        let reference = VasSampler::from_dataset(&data, config.clone()).build(&data);
        let mut reader = ChunkedReader::open(&path).unwrap();
        let streamed = VasSampler::new(config)
            .build_from_source(&mut reader)
            .unwrap();
        assert_points_bitwise_equal(
            &streamed.points,
            &reference.points,
            &format!(
                "build_from_source vs build ({}, {backend})",
                strategy.label()
            ),
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn streaming_pipeline_end_to_end_is_deterministic() {
    // Full out-of-core path, twice: streaming generator → spill → streaming
    // sampler. Two independent runs over two independent spill files must
    // agree exactly.
    let run = |tag: &str| {
        let path = std::env::temp_dir().join(format!(
            "vas-determinism-e2e-{}-{tag}.vaschunk",
            std::process::id()
        ));
        let mut generator = GeolifeSource::new(GeolifeGenerator::with_size(12_000, 5), 2_048);
        spill_source(&mut generator, &path).unwrap();
        let mut reader = ChunkedReader::open(&path).unwrap();
        let sample = VasSampler::new(VasConfig::new(200))
            .build_from_source(&mut reader)
            .unwrap();
        std::fs::remove_file(path).ok();
        sample
    };
    let a = run("a");
    let b = run("b");
    assert_points_bitwise_equal(&a.points, &b.points, "end-to-end streaming pipeline");
}

#[test]
fn parallel_pipeline_is_bit_identical_to_sequential_build_per_backend() {
    // The PR 5 contract: the deterministic parallel execution subsystem —
    // pipelined chunk read-ahead (`PrefetchSource`) feeding the speculative
    // kernel pre-evaluation front (`VasConfig::with_threads`) — must
    // reproduce the sequential `build()` bit-for-bit at 1, 2 and 4 threads,
    // on every locality backend. The kernel bandwidth is left unset so the
    // streaming ε-resolution pre-pass runs through the prefetch pipeline
    // too.
    let data = GeolifeGenerator::with_size(10_000, 21).generate();
    let path = std::env::temp_dir().join(format!(
        "vas-determinism-par-{}.vaschunk",
        std::process::id()
    ));
    spill_dataset(&data, &path, 1_024).unwrap();

    for backend in LocalityBackend::ALL {
        let config = VasConfig::new(300).with_locality_backend(backend);
        let reference = VasSampler::from_dataset(&data, config.clone()).build(&data);
        for threads in [1usize, 2, 4] {
            let reader = ChunkedReader::open(&path).unwrap();
            let mut source = vas::stream::PrefetchSource::new(reader);
            let streamed = VasSampler::new(config.clone().with_threads(threads))
                .build_from_source(&mut source)
                .unwrap();
            assert_points_bitwise_equal(
                &streamed.points,
                &reference.points,
                &format!("prefetch + pre-eval at {threads} threads vs build ({backend})"),
            );
        }
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn batched_kernel_path_is_bit_identical_to_the_scalar_path_per_backend() {
    // The PR 6 contract: the batched SoA kernel-evaluation path (batch-gather
    // neighbourhood lanes + `eval_dist2_batch` sweeps, the default) must
    // reproduce the point-at-a-time scalar path (retained behind
    // `VasConfig::with_scalar_kernel_path`) bit-for-bit — on every locality
    // backend, at 1, 2 and 4 worker threads (the speculative pre-evaluation
    // workers batch too), and for the dense `ExpandShrink` strategy.
    let data = GeolifeGenerator::with_size(10_000, 21).generate();
    for backend in LocalityBackend::ALL {
        let config = VasConfig::new(300).with_locality_backend(backend);
        let scalar = VasSampler::from_dataset(&data, config.clone().with_scalar_kernel_path(true))
            .build(&data);
        for threads in [1usize, 2, 4] {
            let mut sampler = VasSampler::from_dataset(&data, config.clone().with_threads(threads));
            let batched = sampler.build(&data);
            assert_points_bitwise_equal(
                &batched.points,
                &scalar.points,
                &format!("batched vs scalar kernel path ({backend}, {threads} threads)"),
            );
        }
    }
    let es = VasConfig::new(300).with_strategy(InterchangeStrategy::ExpandShrink);
    let scalar =
        VasSampler::from_dataset(&data, es.clone().with_scalar_kernel_path(true)).build(&data);
    let batched = VasSampler::from_dataset(&data, es).build(&data);
    assert_points_bitwise_equal(
        &batched.points,
        &scalar.points,
        "batched vs scalar kernel path (dense ES)",
    );
}

#[test]
fn parallel_loss_estimates_are_bit_identical_to_sequential() {
    let data = GeolifeGenerator::with_size(6_000, 33).generate();
    let kernel = GaussianKernel::for_dataset(&data);
    let sample = VasSampler::from_dataset(&data, VasConfig::new(200)).sample_dataset(&data);
    let sequential = LossEstimator::new(&data, &kernel, LossConfig::default());
    let seq = sequential.evaluate(&kernel, &sample.points);
    for threads in [2usize, 4] {
        let parallel = LossEstimator::new(
            &data,
            &kernel,
            LossConfig {
                threads,
                ..LossConfig::default()
            },
        );
        let par = parallel.evaluate(&kernel, &sample.points);
        assert_eq!(par.mean.to_bits(), seq.mean.to_bits(), "threads {threads}");
        assert_eq!(
            par.median.to_bits(),
            seq.median.to_bits(),
            "threads {threads}"
        );
    }
}

#[test]
fn density_embedding_is_deterministic() {
    let data = GeolifeGenerator::with_size(10_000, 33).generate();
    let sample = VasSampler::from_dataset(&data, VasConfig::new(200)).sample_dataset(&data);
    let a = vas::core::density::with_embedded_density(sample.clone(), &data);
    let b = vas::core::density::with_embedded_density(sample.clone(), &data);
    assert_eq!(
        a.densities, b.densities,
        "density counters must be reproducible"
    );
    // And the striped parallel pass must agree exactly with the sequential
    // one at any thread count.
    for threads in [2usize, 4] {
        let parallel = vas::core::density::density_counts_threaded(&sample.points, &data, threads);
        assert_eq!(
            Some(parallel),
            a.densities,
            "parallel density counts diverged at {threads} threads"
        );
    }
}

#[test]
fn kill_and_resume_is_bit_identical_per_backend_and_thread_count() {
    // The PR 7 contract: a streaming build killed at *any* chunk boundary
    // and resumed from its `.vascheckpt` must reproduce the uninterrupted
    // sample bit for bit — on every locality backend, at 1, 2 and 4 worker
    // threads (the resumed run re-enters the speculative pre-evaluation
    // front mid-stream). The checkpoint carries a byte-exact snapshot of the
    // locality index, so the restored index's future visitation order — and
    // with it every accept/reject decision — is exactly the original's.
    let data = GeolifeGenerator::with_size(10_000, 21).generate();
    let path = std::env::temp_dir().join(format!(
        "vas-determinism-ckpt-{}.vaschunk",
        std::process::id()
    ));
    spill_dataset(&data, &path, 1_024).unwrap();

    for backend in LocalityBackend::ALL {
        let base = VasConfig::new(300).with_locality_backend(backend);
        let reference = {
            let mut reader = ChunkedReader::open(&path).unwrap();
            VasSampler::new(base.clone())
                .build_from_source(&mut reader)
                .unwrap()
        };
        for threads in [1usize, 2, 4] {
            let config = base.clone().with_threads(threads);
            for kill_after in [1u64, 4, 8] {
                let ckpt = std::env::temp_dir().join(format!(
                    "vas-determinism-{}-{backend}-{threads}-{kill_after}.vascheckpt",
                    std::process::id()
                ));
                let policy = CheckpointPolicy::every(&ckpt, 1).halting_after(kill_after);
                let mut reader = ChunkedReader::open(&path).unwrap();
                let outcome = VasSampler::new(config.clone())
                    .build_from_source_checkpointed(&mut reader, &policy)
                    .unwrap();
                assert!(
                    outcome.is_halted(),
                    "kill switch did not fire ({backend}, {threads} threads, kill {kill_after})"
                );

                let mut reader = ChunkedReader::open(&path).unwrap();
                let (_, outcome) = VasSampler::resume_build_from_source(
                    config.clone(),
                    &mut reader,
                    &CheckpointPolicy::every(&ckpt, 1),
                )
                .unwrap();
                let resumed = outcome.into_sample().expect("resumed build completes");
                assert_points_bitwise_equal(
                    &resumed.points,
                    &reference.points,
                    &format!("kill-and-resume ({backend}, {threads} threads, kill {kill_after})"),
                );
                std::fs::remove_file(&ckpt).ok();
            }
        }
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn instrumented_build_is_bit_identical_to_the_uninstrumented_build() {
    // The PR 8 contract: observability is off the data path. A build with a
    // fully attached recorder — live registry, event journal, phase timers,
    // instrumented reader and prefetch pipeline — must reproduce the
    // detached-recorder build bit-for-bit, on every locality backend at 1, 2
    // and 4 worker threads. The kernel bandwidth is left unset so the
    // ε-resolution pre-pass streams through the instrumented stack too.
    let data = GeolifeGenerator::with_size(10_000, 21).generate();
    let path = std::env::temp_dir().join(format!(
        "vas-determinism-obs-{}.vaschunk",
        std::process::id()
    ));
    spill_dataset(&data, &path, 1_024).unwrap();

    for backend in LocalityBackend::ALL {
        let base = VasConfig::new(300).with_locality_backend(backend);
        for threads in [1usize, 2, 4] {
            let config = base.clone().with_threads(threads);
            let uninstrumented = {
                let reader = ChunkedReader::open(&path).unwrap();
                let mut source = vas::stream::PrefetchSource::new(reader);
                VasSampler::new(config.clone())
                    .build_from_source(&mut source)
                    .unwrap()
            };
            let registry = std::sync::Arc::new(MetricsRegistry::new());
            let journal = std::sync::Arc::new(Journal::in_memory());
            let recorder = Recorder::new(std::sync::Arc::clone(&registry))
                .with_journal(std::sync::Arc::clone(&journal))
                .with_timing(true);
            let instrumented = {
                let reader = ChunkedReader::open(&path)
                    .unwrap()
                    .with_recorder(recorder.clone());
                let mut source =
                    vas::stream::PrefetchSource::new(reader).with_recorder(recorder.clone());
                VasSampler::new(config)
                    .with_recorder(recorder.clone())
                    .build_from_source(&mut source)
                    .unwrap()
            };
            assert_points_bitwise_equal(
                &instrumented.points,
                &uninstrumented.points,
                &format!("instrumented vs uninstrumented build ({backend}, {threads} threads)"),
            );
            // The instrumentation must actually have been live. Build-scoped
            // counters (accepts, rejects) reset when `finalize` ends the
            // build, so the liveness probes are lifetime metrics: chunk
            // decodes and the candidate-phase call histogram.
            assert!(
                registry.get(Counter::StreamChunksDecoded) > 0,
                "no chunk decodes recorded ({backend}, {threads} threads)"
            );
            assert!(
                registry.snapshot().phase_calls(Phase::CandidateEval) > 0,
                "no candidate-phase timings recorded ({backend}, {threads} threads)"
            );
            assert!(
                !journal.lines().is_empty(),
                "journal is empty ({backend}, {threads} threads)"
            );
        }
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn traced_build_is_bit_identical_to_the_detached_build() {
    // The ISSUE 9 contract extends PR 8's: the causal layer — hierarchical
    // span tracing plus the flight-recorder ring — is off the data path
    // too. A build with the *entire* observability stack attached (registry,
    // journal, timers, tracer, flight ring, instrumented reader and prefetch
    // pipeline) must reproduce the detached-recorder build bit-for-bit, on
    // every locality backend at 1, 2 and 4 worker threads.
    let data = GeolifeGenerator::with_size(10_000, 23).generate();
    let path = std::env::temp_dir().join(format!(
        "vas-determinism-trace-{}.vaschunk",
        std::process::id()
    ));
    spill_dataset(&data, &path, 1_024).unwrap();

    for backend in LocalityBackend::ALL {
        let base = VasConfig::new(300).with_locality_backend(backend);
        for threads in [1usize, 2, 4] {
            let config = base.clone().with_threads(threads);
            let detached = {
                let reader = ChunkedReader::open(&path).unwrap();
                let mut source = vas::stream::PrefetchSource::new(reader);
                VasSampler::new(config.clone())
                    .build_from_source(&mut source)
                    .unwrap()
            };
            let tracer = std::sync::Arc::new(Tracer::new());
            let flight = std::sync::Arc::new(FlightRecorder::new());
            let recorder = Recorder::new(std::sync::Arc::new(MetricsRegistry::new()))
                .with_journal(std::sync::Arc::new(Journal::in_memory()))
                .with_timing(true)
                .with_tracer(std::sync::Arc::clone(&tracer))
                .with_flight(std::sync::Arc::clone(&flight));
            let traced = {
                let reader = ChunkedReader::open(&path)
                    .unwrap()
                    .with_recorder(recorder.clone());
                let mut source =
                    vas::stream::PrefetchSource::new(reader).with_recorder(recorder.clone());
                VasSampler::new(config)
                    .with_recorder(recorder.clone())
                    .build_from_source(&mut source)
                    .unwrap()
            };
            assert_points_bitwise_equal(
                &traced.points,
                &detached.points,
                &format!("traced vs detached build ({backend}, {threads} threads)"),
            );
            // The causal layer must actually have been live: spans recorded
            // and mirrored into the flight ring, and the exported trace must
            // survive its own parser.
            assert!(
                !tracer.is_empty(),
                "no spans recorded ({backend}, {threads} threads)"
            );
            assert!(
                !flight.is_empty(),
                "flight ring is empty ({backend}, {threads} threads)"
            );
            let parsed =
                parse_chrome_trace(&tracer.to_chrome_trace()).expect("exported trace must parse");
            assert_eq!(
                parsed.len(),
                tracer.spans().len(),
                "trace round trip lost spans ({backend}, {threads} threads)"
            );
        }
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn sharded_build_is_bit_identical_across_threads_chunkings_and_s1_matches_unsharded() {
    // The ISSUE 10 contract: sharded sampling is a *deterministic* scale-out.
    // For every locality backend and S ∈ {1, 2, 4}, `build_sharded` over the
    // in-memory dataset is the reference; the streamed
    // `build_sharded_from_source` must reproduce it bit-for-bit at 1, 2 and
    // 4 per-shard worker threads and across awkward chunk sizes (the shard
    // assignment is a pure per-point function, so how the stream is chunked
    // must not matter). At S = 1 the single shard carries the full budget
    // with no oversampling, so the whole pipeline must collapse to the plain
    // unsharded `build()`, bit for bit.
    let data = GeolifeGenerator::with_size(6_000, 21).generate();
    for backend in LocalityBackend::ALL {
        let base = VasConfig::new(200).with_locality_backend(backend);
        let unsharded = VasSampler::from_dataset(&data, base.clone()).build(&data);
        for shards in [1usize, 2, 4] {
            let reference = ShardedSampler::new(base.clone(), shards).build_sharded(&data);
            if shards == 1 {
                assert_points_bitwise_equal(
                    &reference.points,
                    &unsharded.points,
                    &format!("S = 1 sharded vs unsharded build ({backend})"),
                );
            }
            for threads in [1usize, 2, 4] {
                for chunk in [613usize, 2_048] {
                    let mut source = DatasetSource::with_chunk_size(&data, chunk);
                    let streamed = ShardedSampler::new(base.clone().with_threads(threads), shards)
                        .build_sharded_from_source(&mut source)
                        .unwrap();
                    assert_points_bitwise_equal(
                        &streamed.points,
                        &reference.points,
                        &format!(
                            "sharded stream vs in-memory \
                             ({backend}, S = {shards}, {threads} threads, chunk {chunk})"
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn retried_transient_faults_leave_the_sample_bits_unchanged() {
    // Fault tolerance must not cost determinism: a build whose source fails
    // transiently (and is retried) must equal the fault-free build exactly.
    let data = GeolifeGenerator::with_size(8_000, 55).generate();
    let reference = {
        let mut source = DatasetSource::with_chunk_size(&data, 512);
        VasSampler::new(VasConfig::new(250))
            .build_from_source(&mut source)
            .unwrap()
    };
    let injector = FaultInjectorSource::new(
        DatasetSource::with_chunk_size(&data, 512),
        FaultPlan::transient(99, 4, 2),
    );
    let mut source = RetryingSource::new(injector, RetryPolicy::immediate(4));
    let retried = VasSampler::new(VasConfig::new(250))
        .build_from_source(&mut source)
        .unwrap();
    assert!(
        source.retries() > 0,
        "the fault plan never fired; the scenario is vacuous"
    );
    assert_points_bitwise_equal(
        &retried.points,
        &reference.points,
        "retried vs fault-free build",
    );
}
