//! End-to-end integration tests: the full pipeline from data generation
//! through sampling, density embedding, storage, rendering and evaluation —
//! the path a downstream user of the library would take.

use vas::prelude::*;

/// A full offline-then-online round trip through the public API.
#[test]
fn offline_index_then_interactive_queries() {
    // Offline: generate data, register it, build a VAS sample catalog.
    let data = GeolifeGenerator::with_size(30_000, 99).generate();
    let mut engine = VizEngine::new();
    engine.register_table(Table::from_dataset(&data));
    let table = data.name.clone();
    engine
        .build_catalog(&table, "x", "y", Some("value"), &[500, 2_000], |k| {
            VasSampler::from_dataset(&data, VasConfig::new(k))
        })
        .expect("catalog build");

    // Online: an overview and a zoomed query under a point budget.
    let latency = LatencyModel::mathgl_like();
    let budget_points = latency.tuples_within(std::time::Duration::from_secs(2));
    let overview = engine
        .query(&VizQuery::full(&table).with_budget(budget_points))
        .expect("overview query");
    assert!(overview.from_sample);
    assert!(overview.points.len() <= budget_points.max(500));

    let zoom = ZoomWorkload::new(1).regions(&data, ZoomLevel::Deep, 1)[0].viewport;
    let zoomed = engine
        .query(
            &VizQuery::full(&table)
                .with_budget(budget_points)
                .in_region(zoom),
        )
        .expect("zoom query");
    // The zoomed VAS sample still has something to show.
    assert!(
        !zoomed.points.is_empty(),
        "VAS-backed zoom query returned no points"
    );

    // Rendering both answers produces non-empty bitmaps.
    let renderer = ScatterRenderer::new(PlotStyle::map_plot());
    for (points, region) in [(&overview.points, data.bounds()), (&zoomed.points, zoom)] {
        let canvas = renderer.render_points(points, &Viewport::new(region, 300, 300));
        assert!(canvas.ink(Color::WHITE) > 0);
    }
}

/// The paper's central quantitative claim, end to end: at an equal point
/// budget VAS has lower loss than uniform and stratified sampling, and the
/// gap is large at small budgets.
#[test]
fn vas_dominates_baselines_on_the_loss_metric() {
    let data = GeolifeGenerator::with_size(40_000, 123).generate();
    let kernel = GaussianKernel::for_dataset(&data);
    let estimator = LossEstimator::new(&data, &kernel, LossConfig::default());

    for k in [300usize, 1_000] {
        let uniform = UniformSampler::new(k, 5).sample_dataset(&data);
        let stratified = StratifiedSampler::square(k, data.bounds(), 10, 5).sample_dataset(&data);
        let vas = VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data);

        let l_uni = estimator.log_loss_ratio(&kernel, &uniform.points);
        let l_str = estimator.log_loss_ratio(&kernel, &stratified.points);
        let l_vas = estimator.log_loss_ratio(&kernel, &vas.points);
        assert!(
            l_vas < l_uni && l_vas < l_str,
            "K = {k}: VAS ({l_vas:.3}) must beat uniform ({l_uni:.3}) and stratified ({l_str:.3})"
        );
    }
}

/// Density embedding preserves total mass and helps the density-estimation
/// user task (Section V + Table I(b) in miniature).
#[test]
fn density_embedding_pipeline() {
    let data = GeolifeGenerator::with_size(25_000, 7).generate();
    let k = 800;
    let plain = VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data);
    let embedded = with_embedded_density(plain.clone(), &data);

    assert_eq!(embedded.total_density(), data.len() as u64);
    assert_eq!(embedded.len(), plain.len());

    let task = DensityTask::generate(&data, 6, 3);
    assert!(task.success_ratio(&embedded) >= task.success_ratio(&plain));
}

/// The streaming Sampler interface and the batch `build` interface agree.
#[test]
fn streaming_and_batch_apis_agree() {
    let data = GeolifeGenerator::with_size(5_000, 55).generate();
    let config = VasConfig::new(200).with_epsilon(0.01);

    let mut streaming = VasSampler::from_dataset(&data, config.clone());
    for p in data.iter() {
        streaming.observe(*p);
    }
    let s1 = streaming.finalize();

    let s2 = VasSampler::from_dataset(&data, config).build(&data);
    assert_eq!(s1.points, s2.points);
}

/// Samples survive a CSV round trip through the dataset I/O layer.
#[test]
fn sample_round_trips_through_csv() {
    let data = GeolifeGenerator::with_size(3_000, 11).generate();
    let sample = VasSampler::from_dataset(&data, VasConfig::new(100)).sample_dataset(&data);

    let dir = std::env::temp_dir().join(format!("vas-int-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample.csv");
    let as_dataset = vas::data::Dataset::from_points("sample", sample.points.clone());
    vas::data::io::write_csv(&as_dataset, &path).unwrap();
    let back = vas::data::io::read_csv(&path, "sample").unwrap();
    assert_eq!(back.points, sample.points);
    std::fs::remove_dir_all(dir).ok();
}

/// The exact solver certifies that Interchange gets close to optimal on a
/// small instance (the Table II relationship).
#[test]
fn interchange_is_near_optimal_on_small_instances() {
    let data = GeolifeGenerator::with_size(60, 2).generate();
    let kernel = GaussianKernel::for_dataset(&data);
    let k = 8;

    let approx = VasSampler::from_dataset(
        &data,
        VasConfig::new(k)
            .with_epsilon(kernel.bandwidth())
            .with_passes(5),
    )
    .build(&data);
    let approx_obj = vas::core::objective(&kernel, &approx.points);

    let exact = ExactSolver::new().solve(&kernel, &data.points, k, None);
    assert!(exact.objective <= approx_obj + 1e-9);
    // Theorem 3 bound on the *averaged* objective: approx ≤ 1/4 + optimal.
    let kk = k as f64;
    let averaged_gap = approx_obj / (kk * (kk - 1.0)) - exact.objective / (kk * (kk - 1.0));
    assert!(
        averaged_gap <= 0.25 + 1e-9,
        "Theorem 3 bound violated: gap {averaged_gap}"
    );
}
