//! Acceptance tests for the causal span layer: one traced
//! `build_from_source` must export a Chrome-trace JSON document whose span
//! tree is complete — every vas-par / pre-evaluation `worker_task` span
//! reaches the consuming build's root through its parent chain, and the
//! read-ahead thread's decode spans parent under the same root — plus the
//! flight recorder's post-mortem dump on the fatal path.

use std::collections::HashMap;
use std::sync::Arc;
use vas::prelude::*;

/// Builds a fully traced sampler run over a spilled chunked stream with the
/// speculative pre-evaluation front (threads = 2) and read-ahead prefetch,
/// returning the recorded spans.
fn traced_build(n: usize, k: usize, threads: usize) -> Vec<SpanRecord> {
    let data = GeolifeGenerator::with_size(n, 31).generate();
    let path = std::env::temp_dir().join(format!(
        "vas-tracing-accept-{}-{n}-{threads}.vaschunk",
        std::process::id()
    ));
    spill_dataset(&data, &path, 512).unwrap();
    let tracer = Arc::new(Tracer::new());
    let recorder = Recorder::new(Arc::new(MetricsRegistry::new()))
        .with_timing(true)
        .with_tracer(Arc::clone(&tracer));
    {
        let reader = ChunkedReader::open(&path)
            .unwrap()
            .with_recorder(recorder.clone());
        let mut source = PrefetchSource::new(reader).with_recorder(recorder.clone());
        VasSampler::new(VasConfig::new(k).with_threads(threads))
            .with_recorder(recorder.clone())
            .build_from_source(&mut source)
            .unwrap();
    }
    std::fs::remove_file(&path).ok();
    // The acceptance shape is asserted on the *exported* trace, so the
    // Chrome-trace encoder and parser are part of the contract.
    parse_chrome_trace(&tracer.to_chrome_trace()).expect("exported trace parses")
}

/// Walks `span`'s parent chain to its root (bounded, in case of corruption).
fn root_of<'a>(
    span: &'a SpanRecord,
    by_id: &'a HashMap<u64, &'a SpanRecord>,
) -> Option<&'a SpanRecord> {
    let mut cur = span;
    for _ in 0..64 {
        match cur.parent {
            None => return Some(cur),
            Some(p) => cur = by_id.get(&p)?,
        }
    }
    None
}

#[test]
fn traced_build_produces_a_complete_causal_tree() {
    // Big enough n/k that the accept rate cools past the speculation gate
    // (accept spacing >= the minimum pre-eval batch), so the parallel front
    // actually fans out worker stripes.
    let spans = traced_build(40_000, 150, 2);
    assert!(!spans.is_empty(), "the traced build recorded no spans");
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();

    // Exactly one root, and it is the consuming build.
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(
        roots.len(),
        1,
        "expected one root span, got {:?}",
        roots.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    assert_eq!(roots[0].name, "build_from_source");

    // Every worker span parents (transitively) under that root — the
    // speculative pre-eval front runs on spawned scope threads, so this is
    // the cross-thread propagation contract.
    let workers: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "worker_task").collect();
    assert!(!workers.is_empty(), "no worker_task spans were recorded");
    for w in &workers {
        assert!(w.parent.is_some(), "worker span {} has no parent", w.id);
        let root = root_of(w, &by_id).expect("worker parent chain resolves");
        assert_eq!(
            root.id, roots[0].id,
            "worker span {} roots under {:?}, not the build",
            w.id, root.name
        );
    }
    assert!(
        workers.iter().any(|w| w.thread != roots[0].thread),
        "no worker span ran on a thread other than the consumer's"
    );

    // The read-ahead producer decodes chunks on its own pre-existing thread;
    // its chunk_decode spans must still parent under the build root (via the
    // tracer's ambient root context).
    let decodes: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "chunk_decode").collect();
    assert!(!decodes.is_empty(), "no chunk_decode spans were recorded");
    for d in &decodes {
        let root = root_of(d, &by_id).expect("decode parent chain resolves");
        assert_eq!(root.id, roots[0].id, "decode span {} is orphaned", d.id);
    }
    assert!(
        decodes.iter().all(|d| d.thread != roots[0].thread),
        "prefetch decodes should run on the read-ahead thread"
    );

    // Phase sites inside the loop are present as spans.
    for name in ["fill", "candidate_eval", "prefetch_wait"] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "expected at least one {name:?} span"
        );
    }
}

#[test]
fn sequential_traced_build_has_no_foreign_roots() {
    // With threads = 1 there is no speculation; the tree still has a single
    // build root and no orphans.
    let spans = traced_build(6_000, 200, 1);
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1);
    assert_eq!(roots[0].name, "build_from_source");
    for s in &spans {
        let root = root_of(s, &by_id).expect("parent chain resolves");
        assert_eq!(
            root.id, roots[0].id,
            "span {} ({}) is orphaned",
            s.id, s.name
        );
    }
}

#[test]
fn fatal_build_error_dumps_the_flight_recorder() {
    // The crash flight recorder: a typed fatal error inside
    // `build_from_source` must dump the ring of recent spans/events to the
    // configured post-mortem path.
    let data = GeolifeGenerator::with_size(4_000, 37).generate();
    let spill =
        std::env::temp_dir().join(format!("vas-tracing-fatal-{}.vaschunk", std::process::id()));
    spill_dataset(&data, &spill, 256).unwrap();
    let dump = std::env::temp_dir().join(format!(
        "vas-tracing-fatal-{}.flight.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&dump).ok();

    let flight = Arc::new(FlightRecorder::new());
    flight.set_dump_path(&dump);
    let tracer = Arc::new(Tracer::new());
    let recorder = Recorder::new(Arc::new(MetricsRegistry::new()))
        .with_timing(true)
        .with_tracer(tracer)
        .with_flight(Arc::clone(&flight));

    let reader = ChunkedReader::open(&spill)
        .unwrap()
        .with_recorder(recorder.clone());
    let injector = FaultInjectorSource::new(reader, FaultPlan::fatal_after(2));
    let mut source = RetryingSource::new(injector, RetryPolicy::immediate(3));
    let result = VasSampler::new(VasConfig::new(100))
        .with_recorder(recorder.clone())
        .build_from_source(&mut source);

    assert!(result.is_err(), "the fatal fault must fail the build");
    assert!(flight.dumps() > 0, "the fatal path never dumped the ring");
    let text = std::fs::read_to_string(&dump).expect("post-mortem dump exists");
    let mut lines = text.lines();
    let header = lines.next().expect("dump has a header line");
    assert!(
        header.contains("\"kind\":\"flight_dump\""),
        "header: {header}"
    );
    assert!(
        lines.clone().count() > 0,
        "the dump carries no ring entries"
    );
    // Ring entries are one JSON object per line, spans and events mixed.
    assert!(
        lines.any(|l| l.contains("\"kind\":\"span\"")),
        "no span entries in the dump"
    );

    std::fs::remove_file(&spill).ok();
    std::fs::remove_file(&dump).ok();
}
