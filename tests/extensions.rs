//! Integration tests for the features that go beyond the paper's minimum:
//! Poisson-disk baseline, nested catalogs, catalog persistence, outlier
//! augmentation, jitter rendering and the binned-aggregation comparison.

use vas::binned::{TilePyramid, TilePyramidConfig};
use vas::core::outlier::with_outliers;
use vas::prelude::*;
use vas::storage::{load_catalog, save_catalog};

#[test]
fn poisson_disk_is_a_weaker_substitute_for_vas_on_skewed_data() {
    let data = GeolifeGenerator::with_size(40_000, 99).generate();
    let kernel = GaussianKernel::for_dataset(&data);
    let estimator = LossEstimator::new(&data, &kernel, LossConfig::default());
    let k = 1_000;

    let vas = VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data);
    let poisson = PoissonDiskSampler::with_budget(k, data.bounds(), 3).sample_dataset(&data);

    // Poisson-disk saturates below its budget on skewed data…
    assert!(poisson.len() <= k);
    // …and does not beat VAS on the paper's loss metric.
    let l_vas = estimator.log_loss_ratio(&kernel, &vas.points);
    let l_poisson = estimator.log_loss_ratio(&kernel, &poisson.points);
    assert!(
        l_vas <= l_poisson + 1e-9,
        "VAS {l_vas} should be at least as good as poisson-disk {l_poisson}"
    );
}

#[test]
fn nested_catalog_persists_and_reloads() {
    let data = GeolifeGenerator::with_size(20_000, 5).generate();
    let catalog = SampleCatalog::build_nested(&data, &[200, 1_000], |k| {
        VasSampler::from_dataset(&data, VasConfig::new(k))
    });
    // Nested property across the ladder.
    let samples = catalog.samples();
    for p in &samples[0].points {
        assert!(samples[1].points.contains(p));
    }

    let dir = std::env::temp_dir().join(format!("vas-ext-catalog-{}", std::process::id()));
    save_catalog(&catalog, &dir).unwrap();
    let reloaded = load_catalog(&dir).unwrap();
    assert_eq!(reloaded.sizes(), catalog.sizes());
    assert_eq!(
        reloaded.best_within(500).unwrap().points,
        catalog.best_within(500).unwrap().points
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn outlier_augmentation_preserves_extreme_points() {
    let mut data = GeolifeGenerator::with_size(10_000, 6).generate();
    let glitch = Point::with_value(140.0, 50.0, 0.0);
    data.points.push(glitch);

    let sample = VasSampler::from_dataset(&data, VasConfig::new(150)).sample_dataset(&data);
    let augmented = with_outliers(sample, &data, 3, 0.0);
    assert!(
        augmented.points.contains(&glitch),
        "the injected glitch must survive augmentation"
    );
}

#[test]
fn jitter_and_dot_size_encodings_both_restore_density_signal() {
    let data = GeolifeGenerator::with_size(30_000, 8).generate();
    let sample = with_embedded_density(
        VasSampler::from_dataset(&data, VasConfig::new(800)).sample_dataset(&data),
        &data,
    );
    let task = DensityTask::generate(&data, 6, 2);
    let baseline = {
        let mut plain = sample.clone();
        plain.densities = None;
        task.success_ratio(&plain)
    };
    let with_size_encoding = task.success_ratio(&sample);
    assert!(with_size_encoding >= baseline);

    // The jitter renderer is deterministic and adds ink where density is high.
    let viewport = Viewport::fit(&sample.points, 300, 300);
    let jittered =
        ScatterRenderer::new(PlotStyle::jitter_plot(10, 4)).render_sample(&sample, &viewport);
    let plain_style = PlotStyle {
        radius: 0,
        ..PlotStyle::default()
    };
    let plain = ScatterRenderer::new(plain_style).render_points(&sample.points, &viewport);
    assert!(jittered.ink(Color::WHITE) > plain.ink(Color::WHITE));
}

#[test]
fn binned_pyramid_and_vas_catalog_answer_the_same_overview_consistently() {
    let data = GeolifeGenerator::with_size(25_000, 12).generate();
    let pyramid = TilePyramid::build(&data, TilePyramidConfig { max_level: 7 });
    // Counts are conserved by the pyramid…
    assert_eq!(
        pyramid.approximate_count(&pyramid.bounds()),
        data.len() as u64
    );
    // …while the VAS catalog keeps raw points whose density counters also sum
    // to the dataset size.
    let sample = with_embedded_density(
        VasSampler::from_dataset(&data, VasConfig::new(500)).sample_dataset(&data),
        &data,
    );
    assert_eq!(sample.total_density(), data.len() as u64);
}

#[test]
fn noisy_worker_population_keeps_method_ordering() {
    let data = GeolifeGenerator::with_size(30_000, 16).generate();
    let task = RegressionTask::generate(&data, 12, 7);
    let k = 800;
    let uniform = UniformSampler::new(k, 1).sample_dataset(&data);
    let vas = VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data);

    let answers = |points: &[Point]| -> Vec<bool> {
        task.questions()
            .iter()
            .map(|q| task.answer(q, points))
            .collect()
    };
    let population = WorkerPopulation::paper_default(11);
    let noisy_uniform = population.run(&answers(&uniform.points)).success_ratio;
    let noisy_vas = population.run(&answers(&vas.points)).success_ratio;
    let ideal_uniform = task.success_ratio(&uniform.points);
    let ideal_vas = task.success_ratio(&vas.points);
    // Noise shrinks the gap but must not invert a clear ordering.
    if ideal_vas > ideal_uniform + 0.1 {
        assert!(noisy_vas >= noisy_uniform);
    }
}
