//! Integration tests that check the *shape* of the paper's headline results
//! on scaled-down workloads: who wins, in which direction, and by a sanity-
//! checkable margin. The full-size reproductions live in the `bench` crate's
//! experiment binaries; these tests are small enough to run in CI.

use vas::prelude::*;

/// Figure 8 in miniature: to reach the quality a 2 000-point VAS sample
/// provides, uniform sampling needs several times more points.
#[test]
fn vas_needs_fewer_points_for_equal_quality() {
    let data = GeolifeGenerator::with_size(60_000, 314).generate();
    let kernel = GaussianKernel::for_dataset(&data);
    let estimator = LossEstimator::new(&data, &kernel, LossConfig::default());

    let k_vas = 1_000;
    let vas = VasSampler::from_dataset(&data, VasConfig::new(k_vas)).sample_dataset(&data);
    let target = estimator.log_loss_ratio(&kernel, &vas.points);

    // How many uniformly-sampled points does it take to match that loss?
    let mut needed = None;
    for k in [1_000usize, 2_000, 4_000, 8_000, 16_000, 32_000] {
        let uni = UniformSampler::new(k, 9).sample_dataset(&data);
        if estimator.log_loss_ratio(&kernel, &uni.points) <= target {
            needed = Some(k);
            break;
        }
    }
    match needed {
        Some(k) => assert!(
            k >= 4 * k_vas,
            "uniform matched VAS with only {k} points (expected ≥ {})",
            4 * k_vas
        ),
        None => { /* uniform never reached the target within 32× — even stronger */ }
    }
}

/// Table I(a) in miniature: the regression task degrades gracefully for VAS
/// as the budget shrinks, but collapses for uniform sampling.
#[test]
fn regression_task_ordering_matches_the_paper() {
    let data = GeolifeGenerator::with_size(60_000, 271).generate();
    let task = RegressionTask::generate(&data, 15, 8);
    let k = 400;

    let uniform = UniformSampler::new(k, 2).sample_dataset(&data);
    let stratified = StratifiedSampler::square(k, data.bounds(), 10, 2).sample_dataset(&data);
    let vas = VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data);

    let s_uni = task.success_ratio(&uniform.points);
    let s_str = task.success_ratio(&stratified.points);
    let s_vas = task.success_ratio(&vas.points);

    assert!(
        s_vas >= s_uni && s_vas >= s_str,
        "VAS ({s_vas}) should lead uniform ({s_uni}) and stratified ({s_str})"
    );
}

/// Figure 7 in miniature: across methods and sizes, lower loss goes with
/// higher regression success (negative rank correlation).
#[test]
fn loss_and_user_success_are_negatively_correlated() {
    let data = GeolifeGenerator::with_size(60_000, 41).generate();
    let kernel = GaussianKernel::for_dataset(&data);
    let estimator = LossEstimator::new(&data, &kernel, LossConfig::default());
    let task = RegressionTask::generate(&data, 15, 5);

    let mut losses = Vec::new();
    let mut successes = Vec::new();
    for k in [200usize, 1_000, 5_000] {
        for sample in [
            UniformSampler::new(k, 1).sample_dataset(&data),
            StratifiedSampler::square(k, data.bounds(), 10, 1).sample_dataset(&data),
            VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data),
        ] {
            losses.push(estimator.log_loss_ratio(&kernel, &sample.points));
            successes.push(task.success_ratio(&sample.points));
        }
    }
    let rho = vas::eval::spearman(&losses, &successes);
    assert!(
        rho < -0.3,
        "expected a clear negative correlation, got ρ = {rho:.3}"
    );
}

/// Figure 10 in miniature: at a non-trivial sample size, Expand/Shrink beats
/// the naive inner loop by a wide margin, and adding locality does not hurt.
#[test]
fn expand_shrink_is_much_faster_than_naive() {
    use std::time::Instant;
    let data = GeolifeGenerator::with_size(8_000, 17).generate();
    let epsilon = GaussianKernel::for_dataset(&data).bandwidth();
    let k = 200;

    let time_of = |strategy| {
        let mut sampler = VasSampler::from_dataset(
            &data,
            VasConfig::new(k)
                .with_strategy(strategy)
                .with_epsilon(epsilon),
        );
        let start = Instant::now();
        let s = sampler.sample_dataset(&data);
        assert_eq!(s.len(), k);
        start.elapsed().as_secs_f64()
    };

    let naive = time_of(InterchangeStrategy::Naive);
    let es = time_of(InterchangeStrategy::ExpandShrink);
    assert!(
        naive > 3.0 * es,
        "naive ({naive:.3}s) should be much slower than ES ({es:.3}s)"
    );
}

/// The latency model reproduces the premise of Figure 2: full datasets are
/// far beyond the interactive limit, VAS-sized samples are within it.
#[test]
fn interactivity_gap_between_full_data_and_samples() {
    use std::time::Duration;
    let tableau = LatencyModel::tableau_like();
    let interactive = Duration::from_secs(2);
    assert!(tableau.time_for(50_000_000) > 100 * interactive);
    assert!(tableau.time_for(10_000) < interactive + tableau.overhead);
    // And the budget→points conversion is usable for catalog selection.
    assert!(tableau.tuples_within(Duration::from_secs(10)) > 100_000);
}
